(** Deterministic message plane between the cluster router and its
    shards.

    Every router↔shard exchange is an explicit message pair (request
    out, reply back) pushed through a seeded fault plane in the
    {!Pdm_sim.Fault} style: drops, duplicates (redelivered out of
    order within a bounded window), symmetric and asymmetric
    partitions pinned to op-index spans, and gray slow shards whose
    replies outlive the per-attempt timeout. Whether a given message
    survives is a pure function of keyed hashes of (seed, message id,
    shard) — no mutable randomness — so a schedule replays bit for bit
    and never depends on evaluation order.

    The transport also owns the {e time} story: per-attempt timeouts
    follow a fixed exponential ladder, retry backoff is seeded
    exponential-plus-jitter, and every tick it assesses accumulates in
    its own counter ({!ticks}) — the independently recomputed total the
    cluster's sanitizer check compares its charged rounds against. *)

type partition = {
  shard : int;  (** The shard cut off from the router. *)
  from_op : int;  (** First op index affected (inclusive). *)
  to_op : int;  (** First op index healed (exclusive). *)
  symmetric : bool;
      (** [true]: requests and replies both die. [false] (asymmetric):
          requests reach the shard — writes {e apply} — but every
          reply is lost, the gray case idempotency tokens exist for. *)
}

type spec = {
  seed : int;
  drop : float;  (** Per-message loss probability, each direction. *)
  duplicate : float;  (** Per-delivered-write duplication probability. *)
  reorder_window : int;
      (** Max extra op windows a duplicate lags before redelivery. *)
  gray : (int * int) list;
      (** [(shard, latency)]: every reply takes [latency] ticks; the
          shard looks dead until the timeout ladder outgrows it. *)
  partitions : partition list;
  max_attempts : int;  (** Retry budget per shard per exchange. *)
  timeout_base : int;  (** Ticks before attempt 0 is declared lost. *)
  hedge_after : int;
      (** Failed attempts on a shard before a read hedges to the next
          replica; [-1] disables hedging. *)
  drop_tokens : bool;
      (** The seeded fault-injection control: deliver duplicates
          without their idempotency token so retried/duplicated writes
          re-apply — exploration must catch the divergence. *)
}

val perfect : spec
(** No faults: drop 0, duplicate 0, no gray shards, no partitions,
    4 attempts, timeout base 2, hedge after 1 miss. A cluster on
    [perfect] answers and charges exactly like one with no transport. *)

val spec :
  ?seed:int -> ?drop:float -> ?duplicate:float -> ?reorder_window:int ->
  ?gray:(int * int) list -> ?partitions:partition list ->
  ?max_attempts:int -> ?timeout_base:int -> ?hedge_after:int ->
  ?drop_tokens:bool -> unit -> spec
(** Validated builder (defaults = {!perfect}). Raises
    [Invalid_argument] on out-of-range probabilities (drop and
    duplicate capped at 0.2 so bounded retries still converge),
    windows, budgets or partition spans. *)

val is_noop : spec -> bool

(** {1 Schedule pins}

    Exploration pins individual message faults to op indices; the
    cluster injects them with {!inject} as the differential runner
    fires schedule events. *)

type pin_kind =
  | Pin_drop  (** Drop attempt 0's request during the pinned op. *)
  | Pin_dup  (** Duplicate the first delivered write of the pinned op. *)
  | Pin_partition of { span : int; symmetric : bool }
      (** Open a partition lasting [span] op windows. *)

type pin = { pin_shard : int; kind : pin_kind }

type t

val create : spec -> t

val spec_of : t -> spec
val drop_tokens : t -> bool

val inject : t -> at:int -> pin -> unit

val set_window : t -> start:int -> len:int -> unit
(** Advance the logical op clock: a single client op is a window of
    length 1, a batch covers its whole span. Pins inside the window
    take effect; pinned partitions open here. *)

val window_start : t -> int

type delivery = {
  request_delivered : bool;  (** The shard saw (and applied) it. *)
  replied : bool;  (** The router got the answer within the timeout. *)
  duplicate_lag : int option;
      (** [Some lag]: the network will redeliver this write [lag] op
          windows from now — the caller queues the replay. *)
  cost : int;  (** Ticks this attempt charges (latency or timeout). *)
}

val attempt : t -> shard:int -> write:bool -> attempt:int -> delivery
(** One attempt of one logical exchange. Counts every assessed tick
    into {!ticks}. *)

val timeout : spec -> attempt:int -> int
(** The per-attempt cutoff: [timeout_base * 2^attempt], capped. *)

val backoff : spec -> op:int -> attempt:int -> int
(** Seeded exponential backoff (with keyed jitter) charged before
    retry [attempt + 1] — a pure function of (seed, op, attempt). *)

val charge_backoff : t -> op:int -> attempt:int -> int
(** {!backoff}, also accumulated into {!ticks}. *)

val ticks : t -> int
(** Every tick the transport ever assessed (timeouts, latencies,
    backoffs) — the independent total the cluster's net-round charge
    must equal, sanitizer-checked. *)

type stats = {
  attempts : int;
  drops : int;
  duplicates : int;
  timeouts : int;
  ticks : int;
}

val stats : t -> stats
