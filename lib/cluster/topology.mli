(** Cluster topology: S shards with heterogeneous weights arranged in
    a failure-domain tree (rack → host → shard).

    A topology is an immutable value; {!add_shard}, {!remove_shard}
    and {!reweight} return a new topology with a bumped {!version}.
    The placement function ({!Placement}) is a pure function of a
    topology and a seed, so two processes holding equal topologies
    route every key identically — the cluster-level analogue of the
    paper's deterministic block placement.

    Shard ids are stable identities: they survive reweights, are never
    renumbered by removals, and must never be reused for different
    storage. Weights are small positive integers (1..{!max_weight})
    giving each shard's relative share of the key population. *)

type shard = {
  id : int;  (** Stable identity, >= 0; never reused. *)
  weight : int;  (** Relative key share, in [1, {!max_weight}]. *)
  host : int;  (** Failure-domain leaf group (machine). *)
  rack : int;  (** Failure-domain top level. *)
}

type t

val max_weight : int
(** 64 — bounds the per-key placement work (see {!Placement.score}). *)

val make : shard list -> t
(** Validates: at least one shard, distinct non-negative ids, weights
    in range, non-negative rack/host labels. Raises
    [Invalid_argument]. Version starts at 0. *)

val standard : shards:int -> t
(** The canonical [shards]-shard layout used by sim configs and
    smoke tests: shard [i] has weight 1, host [i], rack [i / 2]
    (two hosts per rack). *)

val shards : t -> shard list
(** Ascending id. *)

val count : t -> int
val version : t -> int
val total_weight : t -> int
val mem : t -> int -> bool
val find : t -> int -> shard option

val racks : t -> int list
(** Distinct rack labels, ascending. *)

val add_shard : t -> shard -> t
(** Raises [Invalid_argument] if the id is already present or the
    shard is invalid. *)

val remove_shard : t -> int -> t
(** Raises [Invalid_argument] if the id is absent or it is the last
    shard. *)

val reweight : t -> int -> weight:int -> t
(** Raises [Invalid_argument] if the id is absent or the weight is out
    of range. *)

val spec_string : t -> string
(** Canonical textual form, ["id:rack:host:weight,..."] ascending by
    id — the CLI syntax, and the vehicle of the cross-process
    determinism property (rebuilding from the spec string yields a
    topology that places every key identically). *)

val of_spec_string : string -> (t, string) result
(** Inverse of {!spec_string} (version resets to 0). *)
