type move = { key : int; from_shards : int list; to_shards : int list }

type plan = {
  moves : move list;
  old_version : int;
  new_version : int;
  keys_considered : int;
}

let same_set a b =
  List.sort compare a = List.sort compare b

let plan ~old_topology ~new_topology ~seed ~replicas ~keys =
  let keys = List.sort_uniq compare keys in
  let moves =
    List.filter_map
      (fun key ->
        let from_shards =
          Placement.replicas old_topology ~seed ~r:replicas key
        in
        let to_shards = Placement.replicas new_topology ~seed ~r:replicas key in
        if from_shards = to_shards then None
        else Some { key; from_shards; to_shards })
      keys
  in
  { moves; old_version = Topology.version old_topology;
    new_version = Topology.version new_topology;
    keys_considered = List.length keys }

let moved_keys p =
  List.length
    (List.filter (fun m -> not (same_set m.from_shards m.to_shards)) p.moves)

let primary_moves p =
  List.length
    (List.filter
       (fun m ->
         match (m.from_shards, m.to_shards) with
         | a :: _, b :: _ -> a <> b
         | _ -> false)
       p.moves)
