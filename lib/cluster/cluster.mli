(** The sharded cluster front end: one journaled one-probe-dynamic
    dictionary + batched engine per shard, deterministic rendezvous
    routing, replica failover, and journal-recoverable migrations.

    Every key lives on the [replicas] shards {!Placement} assigns it
    (distinct failure domains where the topology allows). Updates
    write all alive replica shards — secondaries first, the primary
    last — and reads are served by the first alive shard of the
    placement, so killing any single shard with [replicas >= 2] keeps
    every key available, and an injected crash on an update's primary
    decides its visibility exactly as the journal protocol promises.

    {b The message plane.} With [net = Some spec] every router↔shard
    exchange goes through the deterministic {!Transport}: per-attempt
    timeouts on a fixed exponential ladder, seeded backoff under a
    bounded retry budget, hedged reads that fall over to the next
    replica after [hedge_after] misses, and write messages carrying
    idempotency tokens so a retry after a lost reply (or a duplicated
    delivery) applies {e at most once}. A write that exhausts its
    budget parks in the target shard's repair queue and piggybacks on
    the next exchange that gets through — a healed partition
    self-repairs. Failover ordering consults the heartbeat-free
    {!Detector} (suspicion from consecutive missed replies) instead of
    the omniscient [alive] flag; suspicion is a routing hint only, and
    clears on the first reply after a heal. With [net = None] (the
    default) behavior is bit-identical to the pre-transport cluster.

    {b Honest round accounting.} Shards are independent machines, so
    a scatter-gathered batch's cluster-level cost is the {e maximum}
    of the per-shard engine round counts it induced — the rounds a
    wall clock would observe with the shards running in parallel —
    while per-shard totals stay available for balance inspection.
    Migration rounds are summed (moves are sequenced through the
    journals). Network time (timeouts, latencies, backoffs) is charged
    separately into [net_rounds], and the sanitizer cross-checks the
    router's charge against the transport's independently accumulated
    {!Transport.ticks}.

    {b Migrations.} [add_shard]/[remove_shard]/[reweight] compute the
    deterministic {!Migration.plan} over the cluster's key set and
    execute it copy-then-delete through the per-shard journals. A
    crash mid-plan leaves the plan in flight: lookups fall back to the
    old placement for keys not yet copied, and {!recover} first
    recovers every shard journal, then re-executes the whole plan —
    idempotent, because re-copying writes the same bytes and
    re-deleting an absent key is a no-op. *)

module Journal = Pdm_sim.Journal

exception Unavailable of int
(** Every replica shard of this key is down. *)

exception Retries_exhausted of { key : int; attempts : int }
(** Every replica shard's read retry budget ran out (reads only —
    writes park in repair queues instead of failing). *)

val describe : exn -> string option
(** Structured one-line description of a cluster error, for CLI error
    reporting; [None] for foreign exceptions. *)

type config = {
  replicas : int;  (** Copies per key, >= 1; bounded by the shard count. *)
  shard_capacity : int;  (** Keys each shard's dictionary plans for. *)
  universe : int;
  block_words : int;
  value_bytes : int;
  journaled : bool;  (** Per-shard write-ahead journals (crash safety). *)
  seed : int;  (** Placement + per-shard structure seed. *)
  degree : int;  (** Per-level disk group of each shard, >= 5. *)
  levels : int;
  batch : int;  (** Per-shard engine batch size. *)
  trace_rounds : int;
      (** Per-shard I/O trace ring capacity, tagged with the shard id
          ({!Pdm_sim.Trace.shard}); 0 = untraced. *)
  net : Transport.spec option;
      (** Deterministic message plane between router and shards;
          [None] = direct calls (bit-identical to the pre-transport
          cluster). *)
}

val default_config : config
(** replicas 2, shard_capacity 256, universe 2{^20}, 32-word blocks,
    8-byte values, unjournaled, seed 42, degree 5, levels 2, batch 64,
    untraced, no transport. *)

type t

val create : ?config:config -> Topology.t -> t
(** Builds one dictionary + engine per shard. Raises
    [Invalid_argument] on a config/topology mismatch (e.g. more
    replicas than shards, or partitions configured with a single
    replica). *)

val topology : t -> Topology.t
val config : t -> config
val shard_ids : t -> int list

val shard_machine : t -> int -> int Pdm_sim.Pdm.t
(** Raises [Invalid_argument] on an unknown shard id. *)

val placement : t -> int -> int list
(** The key's replica shard ids under the current topology, primary
    first. *)

val size : t -> int
(** Distinct live keys (cluster-level, not per-copy). *)

val shard_sizes : t -> (int * int) list
(** [(shard id, keys stored)] ascending by id — the balance view. *)

val find : t -> int -> Bytes.t option
(** First serving replica shard answers; falls back to the old
    placement while a crashed migration is in flight. Under a
    transport the read retries with backoff and hedges across
    replicas in two passes: every candidate gets [hedge_after] quick
    attempts in serving order, then — only if the whole quick pass
    missed — its remaining budget up to [max_attempts], so a demoted
    (suspected) replica can never strand the budget of a healthy one.
    Raises {!Unavailable} if every replica shard is down,
    {!Retries_exhausted} if every one times out. *)

val find_batch : t -> int list -> Bytes.t option list
(** Scatter-gather through the per-shard engines; answers in request
    order, duplicates allowed. Cluster rounds charged as the max over
    the shards involved. Under a transport each group is one logical
    exchange (retried whole); keys of a group that misses its hedge
    threshold fall back to per-key hedged reads. *)

val insert : t -> int -> Bytes.t -> unit
(** Writes every alive replica shard, primary last. *)

val delete : t -> int -> bool
(** Whether the key was present (the primary's answer; the registry's
    answer when the primary's exchange is parked in a repair queue). *)

val kill_shard : t -> int -> unit
(** Fail-stop the shard: marks it dead for routing, kills its
    machine's disks and drops its parked repairs. Raises
    [Invalid_argument] on an unknown id. *)

val shard_down : t -> int -> bool

val suspects : t -> int list
(** Shards the {!Detector} currently suspects (ascending) — empty
    without a transport. *)

val inject_net : t -> Transport.pin -> unit
(** Pin a message fault ({!Transport.pin}) at the {e next} op index —
    the hook the network-schedule explorer fires between ops. Raises
    [Invalid_argument] without a transport. *)

val set_crash : t -> Journal.crash_point option -> unit
(** Arm a crash for the next client update's {e primary-shard}
    journaled write (secondaries complete first). Consumed by that
    update; never consumed by migration moves. [Invalid_argument] on
    an unjournaled cluster. *)

val recover : t -> [ `Clean | `Discarded | `Replayed of int ]
(** Recover every shard journal (outcomes aggregated: sums replays,
    otherwise reports a discard if any, else clean), then re-execute
    any in-flight migration plan, then write-repair every key whose
    update crashed mid-write: secondaries are written before the
    primary, so a crashed primary leaves replicas disagreeing with
    the journal outcome, and a hedged or failover read could serve
    the stale side — recovery forces all alive replicas back to the
    journal-authoritative copy. Running it twice is the same as
    running it once. *)

val migration_in_flight : t -> bool

type migration_report = {
  moved_keys : int;  (** Keys whose replica set changed (data copies). *)
  primary_moves : int;  (** Keys whose primary (routing) changed. *)
  keys_total : int;  (** Keys scanned by the plan. *)
  reads : int;  (** Source copies read. *)
  inserts : int;  (** Replica copies written. *)
  deletes : int;  (** Stale copies dropped. *)
  skipped : int;  (** Moves with no responsive source or no stored value. *)
  rounds : int;  (** Machine rounds summed across shards. *)
}

val add_shard :
  ?crash:int * Journal.crash_point -> t -> Topology.shard -> migration_report
(** Extend the topology and migrate. [?crash:(k, p)] arms crash point
    [p] on the [k]-th move's first journaled write — the hook the
    migration crash explorer enumerates; {!Journal.Crashed} then
    escapes with the plan left in flight (see {!recover}). *)

val remove_shard :
  ?crash:int * Journal.crash_point -> t -> int -> migration_report
(** Drain the shard's keys to their new homes, then drop it. *)

val reweight :
  ?crash:int * Journal.crash_point -> t -> int -> weight:int ->
  migration_report

type stats = {
  shards : int;
  keys : int;
  batches : int;
  batch_rounds : int;  (** Cluster-level rounds of all {!find_batch}es. *)
  net_rounds : int;
      (** Network ticks charged by the router (timeouts, latencies,
          backoffs) — sanitizer-checked against {!Transport.ticks}. *)
  direct_lookups : int;
  retries : int;  (** Exchange attempts beyond each first try. *)
  hedges : int;  (** Reads that moved to the next replica early. *)
  failovers : int;
      (** Reads/writes that skipped a dead or suspected shard. *)
  fallback_hits : int;  (** Lookups answered via the old placement. *)
  suspicions : int;  (** Detector threshold crossings (ever). *)
  heals : int;  (** False-suspicion recoveries. *)
  queued_repairs : int;  (** Writes parked for an unreachable shard. *)
  shard_rounds : (int * int) list;  (** Machine rounds per shard. *)
}

val stats : t -> stats

val transport_stats : t -> Transport.stats option
(** Message-plane counters; [None] without a transport. *)

val trace_events : t -> Pdm_sim.Trace.event list
(** All shards' trace events (each tagged with its shard id) merged
    and sorted by round then shard — empty when [trace_rounds = 0]. *)
