module Prng = Pdm_util.Prng

let score ~seed ~key (s : Topology.shard) =
  let best = ref 0 in
  for j = 0 to s.weight - 1 do
    let h = Prng.hash3 ~seed key s.id j in
    if h > !best then best := h
  done;
  !best

let rank topo ~seed key =
  let scored =
    List.map (fun s -> (score ~seed ~key s, s)) (Topology.shards topo)
  in
  List.map snd
    (List.sort
       (fun (sa, (a : Topology.shard)) (sb, b) ->
         if sa <> sb then compare sb sa else compare a.id b.id)
       scored)

(* Greedy selection under progressively relaxed domain constraints:
   racks, then hosts, then bare shard distinctness. Each pass walks
   the full ranking, so the primary (head of the ranking) is always
   chosen first and the result is a pure function of the ranking. *)
let replicas topo ~seed ~r key =
  if r < 1 then invalid_arg "Placement.replicas: r must be >= 1";
  let ranked = rank topo ~seed key in
  let want = min r (List.length ranked) in
  let chosen = ref [] in
  (* reverse order accumulation; length tracked separately *)
  let n = ref 0 in
  let taken (s : Topology.shard) =
    List.exists (fun (c : Topology.shard) -> c.id = s.id) !chosen
  in
  let pass ok =
    List.iter
      (fun s ->
        if !n < want && (not (taken s)) && ok s then begin
          chosen := s :: !chosen;
          incr n
        end)
      ranked
  in
  pass (fun s ->
      not (List.exists (fun (c : Topology.shard) -> c.rack = s.rack) !chosen));
  pass (fun s ->
      not (List.exists (fun (c : Topology.shard) -> c.host = s.host) !chosen));
  pass (fun _ -> true);
  List.rev_map (fun (s : Topology.shard) -> s.id) !chosen

let primary topo ~seed key =
  match replicas topo ~seed ~r:1 key with
  | p :: _ -> p
  | [] -> invalid_arg "Placement.primary: empty topology"
