type shard = { id : int; weight : int; host : int; rack : int }

type t = {
  shards : shard list;  (* ascending id *)
  version : int;
}

let max_weight = 64

let check_shard (s : shard) =
  if s.id < 0 then invalid_arg "Topology: shard id must be >= 0";
  if s.weight < 1 || s.weight > max_weight then
    invalid_arg
      (Printf.sprintf "Topology: weight must be in [1, %d]" max_weight);
  if s.host < 0 || s.rack < 0 then
    invalid_arg "Topology: rack/host labels must be >= 0"

let make shards =
  if shards = [] then invalid_arg "Topology: at least one shard";
  List.iter check_shard shards;
  let sorted = List.sort (fun a b -> compare a.id b.id) shards in
  let rec distinct = function
    | a :: (b :: _ as rest) ->
      if a.id = b.id then
        invalid_arg (Printf.sprintf "Topology: duplicate shard id %d" a.id);
      distinct rest
    | _ -> ()
  in
  distinct sorted;
  { shards = sorted; version = 0 }

let standard ~shards:n =
  if n < 1 then invalid_arg "Topology.standard: shards must be >= 1";
  make (List.init n (fun i -> { id = i; weight = 1; host = i; rack = i / 2 }))

let shards t = t.shards
let count t = List.length t.shards
let version t = t.version
let total_weight t = List.fold_left (fun acc s -> acc + s.weight) 0 t.shards
let mem t id = List.exists (fun s -> s.id = id) t.shards
let find t id = List.find_opt (fun s -> s.id = id) t.shards

let racks t =
  List.sort_uniq compare (List.map (fun s -> s.rack) t.shards)

let add_shard t s =
  check_shard s;
  if mem t s.id then
    invalid_arg (Printf.sprintf "Topology.add_shard: id %d already present" s.id);
  { shards = List.sort (fun a b -> compare a.id b.id) (s :: t.shards);
    version = t.version + 1 }

let remove_shard t id =
  if not (mem t id) then
    invalid_arg (Printf.sprintf "Topology.remove_shard: no shard %d" id);
  if count t = 1 then
    invalid_arg "Topology.remove_shard: cannot remove the last shard";
  { shards = List.filter (fun s -> s.id <> id) t.shards;
    version = t.version + 1 }

let reweight t id ~weight =
  match find t id with
  | None -> invalid_arg (Printf.sprintf "Topology.reweight: no shard %d" id)
  | Some s ->
    check_shard { s with weight };
    { shards =
        List.map (fun s -> if s.id = id then { s with weight } else s) t.shards;
      version = t.version + 1 }

let spec_string t =
  String.concat ","
    (List.map
       (fun s -> Printf.sprintf "%d:%d:%d:%d" s.id s.rack s.host s.weight)
       t.shards)

let of_spec_string str =
  let parse_shard part =
    match String.split_on_char ':' part with
    | [ id; rack; host; weight ] ->
      (match
         ( int_of_string_opt (String.trim id),
           int_of_string_opt (String.trim rack),
           int_of_string_opt (String.trim host),
           int_of_string_opt (String.trim weight) )
       with
       | Some id, Some rack, Some host, Some weight ->
         Ok { id; rack; host; weight }
       | _ -> Error (Printf.sprintf "bad shard spec %S" part))
    | _ ->
      Error
        (Printf.sprintf "bad shard spec %S (want id:rack:host:weight)" part)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match parse_shard p with
       | Ok s -> collect (s :: acc) rest
       | Error _ as e -> e)
  in
  match collect [] (String.split_on_char ',' (String.trim str)) with
  | Error _ as e -> e
  | Ok shards ->
    (match make shards with
     | t -> Ok t
     | exception Invalid_argument m -> Error m)
