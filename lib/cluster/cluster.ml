module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Trace = Pdm_sim.Trace
module Prng = Pdm_util.Prng
module Opd = Pdm_dictionary.One_probe_dynamic
module Engine = Pdm_engine.Engine
module IntSet = Set.Make (Int)

exception Unavailable of int

let () =
  Printexc.register_printer (function
    | Unavailable k ->
      Some (Printf.sprintf "Cluster.Unavailable(key %d)" k)
    | _ -> None)

type config = {
  replicas : int;
  shard_capacity : int;
  universe : int;
  block_words : int;
  value_bytes : int;
  journaled : bool;
  seed : int;
  degree : int;
  levels : int;
  batch : int;
  trace_rounds : int;
}

let default_config =
  { replicas = 2; shard_capacity = 256; universe = 1 lsl 20; block_words = 32;
    value_bytes = 8; journaled = false; seed = 42; degree = 5; levels = 2;
    batch = 64; trace_rounds = 0 }

type shard_state = {
  id : int;
  dict : Opd.t;
  engine : Engine.t;
  mutable alive : bool;
}

type t = {
  cfg : config;
  mutable topology : Topology.t;
  mutable states : (int * shard_state) list;  (* assoc, ascending id *)
  mutable registry : IntSet.t;  (* live keys: the migration scan set *)
  mutable pending_crash : Journal.crash_point option;
  mutable inflight : (Topology.t * Migration.plan) option;
  mutable batches : int;
  mutable batch_rounds : int;
  mutable direct_lookups : int;
  mutable failovers : int;
  mutable fallback_hits : int;
}

(* Matches Sim_run.crash_survives: points at or past the commit header
   leave a committed log that recovery replays. The cluster needs the
   same predicate to keep its key registry honest across an injected
   crash. *)
let crash_survives : Journal.crash_point -> bool = function
  | Before_log | During_log _ | After_log -> false
  | After_commit | During_apply _ | After_apply -> true

let make_state cfg (s : Topology.shard) =
  let dcfg =
    { Opd.universe = cfg.universe; capacity = cfg.shard_capacity;
      degree = cfg.degree; sigma_bits = 8 * cfg.value_bytes;
      levels = cfg.levels; v_factor = 3;
      (* keyed by stable shard id, so a shard's structure seed does
         not depend on when it joined *)
      seed = Prng.hash2 ~seed:cfg.seed 0x5eed s.id }
  in
  let dict = Opd.create ~journaled:cfg.journaled ~block_words:cfg.block_words
      dcfg
  in
  if cfg.trace_rounds > 0 then
    Pdm.set_trace (Opd.machine dict)
      (Some (Trace.create ~shard:s.id ~capacity:cfg.trace_rounds ()));
  let engine =
    Engine.create
      ~config:
        { Engine.max_batch = max 1 cfg.batch;
          (* batches close by size or explicit drain, never by aging *)
          deadline_rounds = max_int / 2; cache_blocks = 0 }
      { Engine.name = Printf.sprintf "shard-%d" s.id;
        machine = Opd.machine dict;
        lookup =
          (fun key ->
            Engine.Fetch
              ( Opd.probe_addresses dict key,
                fun blocks -> Engine.Done (Opd.find_in dict key blocks) ));
        insert = Some (Opd.insert dict) }
  in
  { id = s.id; dict; engine; alive = true }

let validate_config cfg topo =
  if cfg.replicas < 1 then invalid_arg "Cluster: replicas must be >= 1";
  if cfg.replicas > Topology.count topo then
    invalid_arg "Cluster: more replicas than shards";
  if cfg.shard_capacity < 8 then
    invalid_arg "Cluster: shard_capacity must be >= 8";
  if cfg.batch < 1 then invalid_arg "Cluster: batch must be >= 1";
  if cfg.trace_rounds < 0 then
    invalid_arg "Cluster: trace_rounds must be >= 0"

let create ?(config = default_config) topo =
  validate_config config topo;
  { cfg = config; topology = topo;
    states =
      List.map (fun s -> (s.Topology.id, make_state config s))
        (Topology.shards topo);
    registry = IntSet.empty; pending_crash = None; inflight = None;
    batches = 0; batch_rounds = 0; direct_lookups = 0; failovers = 0;
    fallback_hits = 0 }

let topology t = t.topology
let config t = t.cfg
let shard_ids t = List.map fst t.states

let state t id =
  match List.assoc_opt id t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Cluster: no shard %d" id)

let shard_machine t id = Opd.machine (state t id).dict

let placement_in t topo key =
  Placement.replicas topo ~seed:t.cfg.seed ~r:t.cfg.replicas key

let placement t key = placement_in t t.topology key

let size t = IntSet.cardinal t.registry

let shard_sizes t =
  List.map (fun (id, s) -> (id, Opd.size s.dict)) t.states

let shard_down t id = not (state t id).alive

let kill_shard t id =
  let s = state t id in
  s.alive <- false;
  let m = Opd.machine s.dict in
  for d = 0 to Pdm.physical_disks m - 1 do
    if not (Pdm.disk_down m d) then Pdm.kill_disk m d
  done

let set_crash t p =
  if (not t.cfg.journaled) && p <> None then
    invalid_arg "Cluster.set_crash: cluster is not journaled";
  t.pending_crash <- p

(* The alive replica states of a key, placement order preserved;
   counts a failover when the placement head is skipped. *)
let alive_states t ids ~count_failover =
  let states =
    List.filter_map
      (fun id ->
        match List.assoc_opt id t.states with
        | Some s when s.alive -> Some s
        | _ -> None)
      ids
  in
  (if count_failover then
     match (ids, states) with
     | head :: _, s :: _ when s.id <> head -> t.failovers <- t.failovers + 1
     | _ -> ());
  states

let find_via t topo key =
  match alive_states t (placement_in t topo key) ~count_failover:true with
  | [] -> None
  | s :: _ -> Some (Opd.find s.dict key)

let find t key =
  t.direct_lookups <- t.direct_lookups + 1;
  match find_via t t.topology key with
  | None -> raise (Unavailable key)
  | Some (Some _ as v) -> v
  | Some None ->
    (* a crashed migration may not have copied this key yet: its data
       still lives at the old placement *)
    (match t.inflight with
     | None -> None
     | Some (old_topo, _) ->
       (match find_via t old_topo key with
        | Some (Some _ as v) ->
          t.fallback_hits <- t.fallback_hits + 1;
          v
        | Some None | None -> None))

(* One client update: write the value to every alive replica shard,
   secondaries first and the primary last, arming any pending injected
   crash on the primary's journaled write. Reads are served by the
   first alive shard, so the primary's journal outcome is exactly the
   update's visibility — the property the differential crash tests
   pin down. The key registry tracks what the journal protocol
   promises survives. *)
let update t key ~on_survive ~secondary ~primary =
  let ids = placement t key in
  match alive_states t ids ~count_failover:true with
  | [] -> raise (Unavailable key)
  | prim :: rest ->
    let crash = t.pending_crash in
    t.pending_crash <- None;
    List.iter secondary rest;
    (match crash with
     | Some p -> Opd.set_crash prim.dict (Some p)
     | None -> ());
    (match primary prim with
     | result ->
       if crash <> None then Opd.set_crash prim.dict None;
       on_survive ();
       result
     | exception Journal.Crashed ->
       (* the registry mirrors the journal outcome: a surviving update
          is reflected, a vanished one is not (the key was never added
          / never removed) *)
       (match crash with
        | Some p when crash_survives p -> on_survive ()
        | _ -> ());
       raise Journal.Crashed)

let insert t key value =
  ignore
    (update t key
       ~on_survive:(fun () -> t.registry <- IntSet.add key t.registry)
       ~secondary:(fun s -> Opd.insert s.dict key value)
       ~primary:(fun s -> Opd.insert s.dict key value; true))

let delete t key =
  update t key
    ~on_survive:(fun () -> t.registry <- IntSet.remove key t.registry)
    ~secondary:(fun s -> ignore (Opd.delete s.dict key))
    ~primary:(fun s -> Opd.delete s.dict key)

let find_batch t keys =
  match keys with
  | [] -> []
  | keys ->
    t.batches <- t.batches + 1;
    let n = List.length keys in
    let answers = Array.make n None in
    (* route each position to its serving shard, grouping per shard in
       encounter order *)
    let groups = ref [] in
    (* (shard_state, (pos, key) list in reverse) assoc by shard id *)
    List.iteri
      (fun pos key ->
        t.direct_lookups <- t.direct_lookups + 1;
        match alive_states t (placement t key) ~count_failover:true with
        | [] -> raise (Unavailable key)
        | s :: _ ->
          (match List.assoc_opt s.id !groups with
           | Some cell -> cell := (pos, key) :: !cell
           | None -> groups := (s.id, ref [ (pos, key) ]) :: !groups))
      keys;
    (* scatter-gather: each shard's engine serves its group as one
       batched run; shards are independent machines, so the cluster
       pays the slowest shard's rounds *)
    let max_delta = ref 0 in
    List.iter
      (fun (id, cell) ->
        let s = state t id in
        let entries = List.rev !cell in
        let before = Engine.round s.engine in
        List.iter
          (fun (_, key) ->
            ignore (Engine.submit s.engine (Engine.Lookup key)))
          entries;
        Engine.drain s.engine;
        let outs = Engine.take_outcomes s.engine in
        (match
           List.iter2
             (fun (pos, _) (o : Engine.outcome) ->
               answers.(pos) <- o.Engine.value)
             entries outs
         with
         | () -> ()
         | exception Invalid_argument _ ->
           invalid_arg "Cluster.find_batch: engine answer arity");
        max_delta := max !max_delta (Engine.round s.engine - before))
      (List.rev !groups);
    t.batch_rounds <- t.batch_rounds + !max_delta;
    (* old-placement fallback for keys a crashed migration has not
       copied yet: per-key direct reads, charged as the slowest
       shard's extra machine rounds *)
    (match t.inflight with
     | None -> ()
     | Some (old_topo, _) ->
       let deltas = ref [] in
       (* remember each shard's round counter at its first fallback
          read so the extra cost is the per-shard delta *)
       let rounds_of id =
         if not (List.mem_assoc id !deltas) then
           deltas := (id, Pdm.rounds_total (shard_machine t id)) :: !deltas
       in
       List.iteri
         (fun pos key ->
           if answers.(pos) = None then
             match alive_states t (placement_in t old_topo key)
                     ~count_failover:false
             with
             | [] -> ()
             | s :: _ ->
               rounds_of s.id;
               (match Opd.find s.dict key with
                | Some _ as v ->
                  t.fallback_hits <- t.fallback_hits + 1;
                  answers.(pos) <- v
                | None -> ()))
         keys;
       let extra =
         List.fold_left
           (fun acc (id, before) ->
             max acc (Pdm.rounds_total (shard_machine t id) - before))
           0 !deltas
       in
       t.batch_rounds <- t.batch_rounds + extra);
    Array.to_list answers

(* --- migrations --- *)

type migration_report = {
  moved_keys : int;
  primary_moves : int;
  keys_total : int;
  reads : int;
  inserts : int;
  deletes : int;
  skipped : int;
  rounds : int;
}

let total_rounds t =
  List.fold_left
    (fun acc (_, s) -> acc + Pdm.rounds_total (Opd.machine s.dict))
    0 t.states

let diff a b = List.filter (fun x -> not (List.mem x b)) a

(* Execute a plan's moves in order: read the value from the first
   alive old-placement shard, copy it to the new shards, then drop the
   stale copies. [?crash:(k, p)] arms [p] on move [k]'s first
   journaled write. Re-running a whole plan is idempotent: re-copying
   rewrites identical bytes and re-deleting an absent key is a no-op,
   which is what makes {!recover}'s re-execution correct. *)
let execute_plan ?crash t (plan : Migration.plan) =
  let reads = ref 0 and inserts = ref 0 and deletes = ref 0 in
  let skipped = ref 0 in
  List.iteri
    (fun i (mv : Migration.move) ->
      let armed =
        ref (match crash with Some (k, p) when k = i -> Some p | _ -> None)
      in
      let journaled_write s f =
        match !armed with
        | Some p when Opd.journaled s.dict ->
          armed := None;
          Opd.set_crash s.dict (Some p);
          (* a Crashed from [f] leaves the point armed; recover's
             per-shard Opd.recover clears it *)
          f ();
          Opd.set_crash s.dict None
        | _ -> f ()
      in
      match alive_states t mv.from_shards ~count_failover:false with
      | [] -> incr skipped
      | src :: _ ->
        (match Opd.find src.dict mv.key with
         | None -> incr skipped  (* already drained, or never stored *)
         | Some value ->
           incr reads;
           List.iter
             (fun id ->
               match List.assoc_opt id t.states with
               | Some s when s.alive ->
                 journaled_write s (fun () ->
                     Opd.insert s.dict mv.key value);
                 incr inserts
               | Some _ | None -> ())
             (diff mv.to_shards mv.from_shards);
           List.iter
             (fun id ->
               match List.assoc_opt id t.states with
               | Some s when s.alive ->
                 journaled_write s (fun () ->
                     ignore (Opd.delete s.dict mv.key));
                 incr deletes
               | Some _ | None -> ())
             (diff mv.from_shards mv.to_shards)))
    plan.moves;
  (!reads, !inserts, !deletes, !skipped)

let insert_sorted assoc entry =
  List.sort (fun (a, _) (b, _) -> compare a b) (entry :: assoc)

let change ?crash t new_topo =
  if crash <> None && not t.cfg.journaled then
    invalid_arg "Cluster: crash injection needs a journaled cluster";
  if t.inflight <> None then
    invalid_arg "Cluster: a migration is already in flight (recover first)";
  let old_topo = t.topology in
  let plan =
    Migration.plan ~old_topology:old_topo ~new_topology:new_topo
      ~seed:t.cfg.seed ~replicas:t.cfg.replicas
      ~keys:(IntSet.elements t.registry)
  in
  (* instantiate joining shards before any move needs them *)
  List.iter
    (fun (s : Topology.shard) ->
      if not (List.mem_assoc s.id t.states) then
        t.states <- insert_sorted t.states (s.id, make_state t.cfg s))
    (Topology.shards new_topo);
  t.inflight <- Some (old_topo, plan);
  t.topology <- new_topo;
  let rounds0 = total_rounds t in
  let reads, inserts, deletes, skipped = execute_plan ?crash t plan in
  t.inflight <- None;
  t.states <-
    List.filter (fun (id, _) -> Topology.mem new_topo id) t.states;
  { moved_keys = Migration.moved_keys plan;
    primary_moves = Migration.primary_moves plan;
    keys_total = plan.keys_considered; reads; inserts; deletes; skipped;
    rounds = total_rounds t - rounds0 }

let add_shard ?crash t shard = change ?crash t (Topology.add_shard t.topology shard)

let remove_shard ?crash t id =
  if t.cfg.replicas > Topology.count t.topology - 1 then
    invalid_arg "Cluster.remove_shard: would leave fewer shards than replicas";
  change ?crash t (Topology.remove_shard t.topology id)

let reweight ?crash t id ~weight =
  change ?crash t (Topology.reweight t.topology id ~weight)

let migration_in_flight t = t.inflight <> None

let recover t =
  (* dead shards stay dead: their disks refuse IO, and the data lives
     on the surviving replicas — only live shards run journal recovery *)
  let outcomes =
    List.filter_map
      (fun (_, s) -> if s.alive then Some (Opd.recover s.dict) else None)
      t.states
  in
  let replayed =
    List.fold_left
      (fun acc o -> match o with `Replayed n -> acc + n | _ -> acc)
      0 outcomes
  in
  let combined =
    if replayed > 0 then `Replayed replayed
    else if List.exists (fun o -> o = `Discarded) outcomes then `Discarded
    else `Clean
  in
  (match t.inflight with
   | None -> ()
   | Some (_, plan) ->
     let (_ : int * int * int * int) = execute_plan t plan in
     t.inflight <- None;
     t.states <-
       List.filter (fun (id, _) -> Topology.mem t.topology id) t.states);
  combined

type stats = {
  shards : int;
  keys : int;
  batches : int;
  batch_rounds : int;
  direct_lookups : int;
  failovers : int;
  fallback_hits : int;
  shard_rounds : (int * int) list;
}

let stats t =
  { shards = List.length t.states; keys = size t; batches = t.batches;
    batch_rounds = t.batch_rounds; direct_lookups = t.direct_lookups;
    failovers = t.failovers; fallback_hits = t.fallback_hits;
    shard_rounds =
      List.map
        (fun (id, s) -> (id, Pdm.rounds_total (Opd.machine s.dict)))
        t.states }

let trace_events t =
  let evs =
    List.concat_map
      (fun (_, s) ->
        match Pdm.trace (Opd.machine s.dict) with
        | Some tr -> Trace.events tr
        | None -> [])
      t.states
  in
  List.sort
    (fun (a : Trace.event) b ->
      if a.round <> b.round then compare a.round b.round
      else compare a.shard b.shard)
    evs
