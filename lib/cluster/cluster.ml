module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Trace = Pdm_sim.Trace
module Sanitize = Pdm_sim.Sanitize
module Prng = Pdm_util.Prng
module Opd = Pdm_dictionary.One_probe_dynamic
module Engine = Pdm_engine.Engine
module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

exception Unavailable of int

exception Retries_exhausted of { key : int; attempts : int }

let describe = function
  | Unavailable k ->
    Some
      (Printf.sprintf
         "cluster: key %d unavailable: every replica shard is down" k)
  | Retries_exhausted { key; attempts } ->
    Some
      (Printf.sprintf
         "cluster: key %d: retry budget exhausted after %d attempts (every \
          replica shard timed out)"
         key attempts)
  | _ -> None

let () =
  Printexc.register_printer (function
    | Unavailable k ->
      Some (Printf.sprintf "Cluster.Unavailable(key %d)" k)
    | Retries_exhausted { key; attempts } ->
      Some
        (Printf.sprintf "Cluster.Retries_exhausted(key %d, %d attempts)" key
           attempts)
    | _ -> None)

type config = {
  replicas : int;
  shard_capacity : int;
  universe : int;
  block_words : int;
  value_bytes : int;
  journaled : bool;
  seed : int;
  degree : int;
  levels : int;
  batch : int;
  trace_rounds : int;
  net : Transport.spec option;
}

let default_config =
  { replicas = 2; shard_capacity = 256; universe = 1 lsl 20; block_words = 32;
    value_bytes = 8; journaled = false; seed = 42; degree = 5; levels = 2;
    batch = 64; trace_rounds = 0; net = None }

(* A write message parked for a shard the router cannot reach: it
   piggybacks (in order) on the next exchange that gets through. *)
type pending = { token : int; perform : unit -> bool }

type shard_state = {
  id : int;
  dict : Opd.t;
  engine : Engine.t;
  mutable alive : bool;
  mutable applied : bool IntMap.t;
      (* idempotency token -> memoized reply: the at-most-once table *)
  mutable repairs : pending list;  (* oldest first *)
}

(* A duplicated write the network will redeliver [release] windows
   later; the idempotency token is what keeps the replay harmless. *)
type dup = {
  release : int;
  dup_shard : int;
  dup_token : int;
  replay : unit -> bool;
}

type t = {
  cfg : config;
  mutable topology : Topology.t;
  mutable states : (int * shard_state) list;  (* assoc, ascending id *)
  mutable registry : IntSet.t;  (* live keys: the migration scan set *)
  mutable pending_crash : Journal.crash_point option;
  mutable inflight : (Topology.t * Migration.plan) option;
  net : Transport.t option;
  detector : Detector.t;
  mutable ops_seen : int;  (* logical op clock (transport windows) *)
  mutable token_ctr : int;
  mutable dup_queue : dup list;  (* insertion order *)
  mutable batches : int;
  mutable batch_rounds : int;
  mutable net_rounds : int;  (* transport ticks charged by the router *)
  mutable direct_lookups : int;
  mutable retries : int;
  mutable hedges : int;
  mutable failovers : int;
  mutable fallback_hits : int;
  mutable queued_repairs : int;
  mutable dirty : int list;
      (* keys whose update crashed mid-write: their replicas may
         disagree until {!recover} reconciles them to the journal
         outcome *)
}

(* Matches Sim_run.crash_survives: points at or past the commit header
   leave a committed log that recovery replays. The cluster needs the
   same predicate to keep its key registry honest across an injected
   crash. *)
let crash_survives : Journal.crash_point -> bool = function
  | Before_log | During_log _ | After_log -> false
  | After_commit | During_apply _ | After_apply -> true

let make_state cfg (s : Topology.shard) =
  let dcfg =
    { Opd.universe = cfg.universe; capacity = cfg.shard_capacity;
      degree = cfg.degree; sigma_bits = 8 * cfg.value_bytes;
      levels = cfg.levels; v_factor = 3;
      (* keyed by stable shard id, so a shard's structure seed does
         not depend on when it joined *)
      seed = Prng.hash2 ~seed:cfg.seed 0x5eed s.id }
  in
  let dict = Opd.create ~journaled:cfg.journaled ~block_words:cfg.block_words
      dcfg
  in
  if cfg.trace_rounds > 0 then
    Pdm.set_trace (Opd.machine dict)
      (Some (Trace.create ~shard:s.id ~capacity:cfg.trace_rounds ()));
  let engine =
    Engine.create
      ~config:
        { Engine.max_batch = max 1 cfg.batch;
          (* batches close by size or explicit drain, never by aging *)
          deadline_rounds = max_int / 2; cache_blocks = 0 }
      { Engine.name = Printf.sprintf "shard-%d" s.id;
        machine = Opd.machine dict;
        lookup =
          (fun key ->
            Engine.Fetch
              ( Opd.probe_addresses dict key,
                fun blocks -> Engine.Done (Opd.find_in dict key blocks) ));
        insert = Some (Opd.insert dict); delete = Some (Opd.delete dict) }
  in
  { id = s.id; dict; engine; alive = true; applied = IntMap.empty;
    repairs = [] }

let validate_config cfg topo =
  if cfg.replicas < 1 then invalid_arg "Cluster: replicas must be >= 1";
  if cfg.replicas > Topology.count topo then
    invalid_arg "Cluster: more replicas than shards";
  if cfg.shard_capacity < 8 then
    invalid_arg "Cluster: shard_capacity must be >= 8";
  if cfg.batch < 1 then invalid_arg "Cluster: batch must be >= 1";
  if cfg.trace_rounds < 0 then
    invalid_arg "Cluster: trace_rounds must be >= 0";
  match cfg.net with
  | Some spec when spec.Transport.partitions <> [] && cfg.replicas < 2 ->
    invalid_arg "Cluster: partitions need replicas >= 2 to stay available"
  | Some _ | None -> ()

let create ?(config = default_config) topo =
  validate_config config topo;
  { cfg = config; topology = topo;
    states =
      List.map (fun s -> (s.Topology.id, make_state config s))
        (Topology.shards topo);
    registry = IntSet.empty; pending_crash = None; inflight = None;
    net = Option.map Transport.create config.net;
    detector = Detector.create (); ops_seen = 0; token_ctr = 0;
    dup_queue = []; batches = 0; batch_rounds = 0; net_rounds = 0;
    direct_lookups = 0; retries = 0; hedges = 0; failovers = 0;
    fallback_hits = 0; queued_repairs = 0; dirty = [] }

let topology t = t.topology
let config t = t.cfg
let shard_ids t = List.map fst t.states

let state t id =
  match List.assoc_opt id t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Cluster: no shard %d" id)

let shard_machine t id = Opd.machine (state t id).dict

let placement_in t topo key =
  Placement.replicas topo ~seed:t.cfg.seed ~r:t.cfg.replicas key

let placement t key = placement_in t t.topology key

let size t = IntSet.cardinal t.registry

let shard_sizes t =
  List.map (fun (id, s) -> (id, Opd.size s.dict)) t.states

let shard_down t id = not (state t id).alive

let suspects t = Detector.suspects t.detector

let kill_shard t id =
  let s = state t id in
  s.alive <- false;
  (* a dead shard never flushes: drop its parked writes with it *)
  s.repairs <- [];
  let m = Opd.machine s.dict in
  for d = 0 to Pdm.physical_disks m - 1 do
    if not (Pdm.disk_down m d) then Pdm.kill_disk m d
  done

let set_crash t p =
  if (not t.cfg.journaled) && p <> None then
    invalid_arg "Cluster.set_crash: cluster is not journaled";
  t.pending_crash <- p

let inject_net t pin =
  match t.net with
  | None -> invalid_arg "Cluster.inject_net: cluster has no transport"
  | Some tr -> Transport.inject tr ~at:t.ops_seen pin

(* --- the message layer ---------------------------------------------

   With [net = None] every helper below collapses to the direct call
   it wraps; with a transport, each router↔shard exchange goes through
   {!Transport.attempt} with per-attempt timeouts, seeded backoff, a
   bounded retry budget, and the suspicion detector fed by misses. *)

(* pdm-lint: domain local — token counter on the router; one router domain issues all tokens *)
let fresh_token t =
  let token = t.token_ctr in
  t.token_ctr <- token + 1;
  token

(* A retry that timed out is visible in the shard's I/O trace, tagged
   with its (1-based) attempt number. *)
let record_net_trace t st ~write ~attempt =
  if t.cfg.trace_rounds > 0 then
    match Pdm.trace (Opd.machine st.dict) with
    | Some trace ->
      Trace.record trace
        { Trace.round = Pdm.rounds_total (Opd.machine st.dict);
          op = (if write then Trace.Write else Trace.Read);
          per_disk = [||]; retries = 0; degraded = true; shard = st.id;
          attempt = attempt + 1 }
    | None -> ()

(* Apply a write message at most once: the token table memoizes the
   shard's reply, so a retry after a lost reply (or a duplicated
   delivery) returns the remembered answer instead of re-applying.
   [drop_tokens] is the seeded fault-injection control that skips the
   check — exploration must catch the resulting divergence. *)
(* pdm-lint: domain local — migration cursor owned by the router domain *)
let apply_once tr st ~token (perform : unit -> bool) =
  if Transport.drop_tokens tr then perform ()
  else
    match IntMap.find_opt token st.applied with
    | Some r -> r
    | None ->
      let r = perform () in
      st.applied <- IntMap.add token r st.applied;
      r

(* pdm-lint: domain local — repair queue drained only by the router domain *)
let flush_repairs tr st =
  match st.repairs with
  | [] -> ()
  | rs ->
    st.repairs <- [];
    List.iter (fun p -> ignore (apply_once tr st ~token:p.token p.perform)) rs

let deliver_duplicate t tr (d : dup) =
  match List.assoc_opt d.dup_shard t.states with
  | Some st when st.alive ->
    ignore (apply_once tr st ~token:d.dup_token d.replay)
  | Some _ | None -> ()

(* Open the next logical window [start, start + len) on the transport
   clock and deliver any duplicated writes whose lag has expired. *)
(* pdm-lint: domain local — round-window counters owned by the router domain *)
let begin_window t len =
  match t.net with
  | None -> ()
  | Some tr ->
    let start = t.ops_seen in
    t.ops_seen <- start + len;
    Transport.set_window tr ~start ~len;
    let due, later =
      List.partition (fun d -> d.release <= start) t.dup_queue
    in
    t.dup_queue <- later;
    List.iter (deliver_duplicate t tr) due

(* Every tick the router charges itself must equal what the transport
   assessed; the sanitizer cross-checks the two independently kept
   totals so a future path that forgets to charge fails loudly. *)
let net_sanity t =
  match t.net with
  | None -> ()
  | Some tr ->
    if Pdm.sanitize_enabled () && t.net_rounds <> Transport.ticks tr then
      Sanitize.fail ~check:"cluster-net-rounds"
        (Printf.sprintf
           "router charged %d net rounds, transport assessed %d"
           t.net_rounds (Transport.ticks tr))

(* pdm-lint: domain local — retry ledger on the router's own state *)
let charge_retry t tr ~op ~attempt =
  t.retries <- t.retries + 1;
  t.net_rounds <- t.net_rounds + Transport.charge_backoff tr ~op ~attempt

(* One logical write message to shard [st]: delivered-with-retries
   under the transport; when the budget runs out the write parks in
   the shard's repair queue (it will piggyback on the next delivered
   exchange) and [fallback] supplies the reply the router answers
   with. Retries reuse the idempotency token, so a reply lost after
   the shard applied does not double-apply. *)
(* pdm-lint: domain local — shard scheduler state; each shard is owned exclusively by the router loop today *)
let write_rpc t tr st ~fallback (perform : unit -> bool) =
  let token = fresh_token t in
  let op = Transport.window_start tr in
  let spec = Transport.spec_of tr in
  let rec go a =
    if a >= spec.Transport.max_attempts then begin
      st.repairs <- st.repairs @ [ { token; perform } ];
      t.queued_repairs <- t.queued_repairs + 1;
      fallback ()
    end
    else begin
      if a > 0 then charge_retry t tr ~op ~attempt:(a - 1);
      let d = Transport.attempt tr ~shard:st.id ~write:true ~attempt:a in
      t.net_rounds <- t.net_rounds + d.Transport.cost;
      if d.Transport.request_delivered then begin
        flush_repairs tr st;
        let r = apply_once tr st ~token perform in
        (match d.Transport.duplicate_lag with
         | Some lag ->
           t.dup_queue <-
             t.dup_queue
             @ [ { release = op + lag; dup_shard = st.id; dup_token = token;
                   replay = perform } ]
         | None -> ());
        if d.Transport.replied then begin
          Detector.record_reply t.detector st.id;
          r
        end
        else begin
          Detector.record_miss t.detector st.id;
          record_net_trace t st ~write:true ~attempt:a;
          go (a + 1)
        end
      end
      else begin
        Detector.record_miss t.detector st.id;
        record_net_trace t st ~write:true ~attempt:a;
        go (a + 1)
      end
    end
  in
  go 0

(* One read exchange with [st]: up to [budget] attempts; [None] means
   every attempt timed out (the caller hedges or fails over). The
   shard does the lookup work whenever the request lands — even if the
   reply is lost, those machine rounds were honestly spent. *)
(* pdm-lint: domain local — shard scheduler state; each shard is owned exclusively by the router loop today *)
let read_rpc t tr st ~budget ~attempts_used key =
  let op = Transport.window_start tr in
  let rec go a =
    if a >= budget then None
    else begin
      if a > 0 then charge_retry t tr ~op ~attempt:(a - 1);
      incr attempts_used;
      let d = Transport.attempt tr ~shard:st.id ~write:false ~attempt:a in
      t.net_rounds <- t.net_rounds + d.Transport.cost;
      if d.Transport.request_delivered then flush_repairs tr st;
      if d.Transport.replied then begin
        Detector.record_reply t.detector st.id;
        Some (Opd.find st.dict key)
      end
      else begin
        if d.Transport.request_delivered then
          ignore (Opd.find st.dict key);
        Detector.record_miss t.detector st.id;
        record_net_trace t st ~write:false ~attempt:a;
        go (a + 1)
      end
    end
  in
  go 0

(* The serving-order replica states of a key: alive shards in
   placement order, except that with a transport the suspicion
   detector demotes suspected shards behind unsuspected ones — the
   heartbeat-free replacement for consulting [alive] omnisciently.
   Counts a failover when the placement head is not served first. *)
(* pdm-lint: domain local — availability mask recomputed by the router between windows *)
let serving_states t ids ~count_failover =
  let alive =
    List.filter_map
      (fun id ->
        match List.assoc_opt id t.states with
        | Some s when s.alive -> Some s
        | _ -> None)
      ids
  in
  let states =
    match t.net with
    | None -> alive
    | Some _ ->
      let fresh, suspect =
        List.partition
          (fun s -> not (Detector.suspected t.detector s.id))
          alive
      in
      fresh @ suspect
  in
  (if count_failover then
     match (ids, states) with
     | head :: _, s :: _ when s.id <> head -> t.failovers <- t.failovers + 1
     | _ -> ());
  states

(* Hedged read walk, two phases: first every candidate in serving
   order gets [hedge_after] quick attempts (hedging to the next after
   each miss), then — only if the whole first pass missed — every
   candidate gets its remaining budget up to [max_attempts]. The
   second pass matters when the detector has demoted a partitioned
   shard to the back: a one-attempt unlucky timeout on the healthy
   head must not leave the full budget stranded on the unreachable
   replica. With hedging off there is a single full-budget pass.
   Raises when every candidate exhausts [max_attempts]. *)
(* pdm-lint: domain local — per-window transport tallies owned by the router domain *)
let net_read t tr topo key ~count_failover =
  match serving_states t (placement_in t topo key) ~count_failover with
  | [] -> None
  | cands ->
    let spec = Transport.spec_of tr in
    let hedging = spec.Transport.hedge_after >= 0 in
    let max_attempts = spec.Transport.max_attempts in
    let attempts_used = ref 0 in
    let rec pass cands ~budget ~hedges =
      match cands with
      | [] -> None
      | st :: rest ->
        (match read_rpc t tr st ~budget ~attempts_used key with
         | Some answer -> Some answer
         | None ->
           if hedges && rest <> [] then t.hedges <- t.hedges + 1;
           pass rest ~budget ~hedges)
    in
    let answer =
      if not hedging then pass cands ~budget:max_attempts ~hedges:false
      else begin
        let quick = min spec.Transport.hedge_after max_attempts in
        match pass cands ~budget:quick ~hedges:true with
        | Some _ as a -> a
        | None -> pass cands ~budget:(max_attempts - quick) ~hedges:false
      end
    in
    (match answer with
     | Some answer -> Some answer
     | None -> raise (Retries_exhausted { key; attempts = !attempts_used }))

let find_via t topo key =
  match serving_states t (placement_in t topo key) ~count_failover:true with
  | [] -> None
  | s :: _ -> Some (Opd.find s.dict key)

(* pdm-lint: domain local — scatter-gather scratch owned by the router for the duration of the call *)
let find t key =
  begin_window t 1;
  t.direct_lookups <- t.direct_lookups + 1;
  let result =
    match t.net with
    | None ->
      (match find_via t t.topology key with
       | None -> raise (Unavailable key)
       | Some (Some _ as v) -> v
       | Some None ->
         (* a crashed migration may not have copied this key yet: its
            data still lives at the old placement *)
         (match t.inflight with
          | None -> None
          | Some (old_topo, _) ->
            (match find_via t old_topo key with
             | Some (Some _ as v) ->
               t.fallback_hits <- t.fallback_hits + 1;
               v
             | Some None | None -> None)))
    | Some tr ->
      (match net_read t tr t.topology key ~count_failover:true with
       | None -> raise (Unavailable key)
       | Some (Some _ as v) -> v
       | Some None ->
         (match t.inflight with
          | None -> None
          | Some (old_topo, _) ->
            (match net_read t tr old_topo key ~count_failover:false with
             | Some (Some _ as v) ->
               t.fallback_hits <- t.fallback_hits + 1;
               v
             | Some None | None -> None)))
  in
  net_sanity t;
  result

(* One client update: write the value to every alive replica shard,
   secondaries first and the primary last, arming any pending injected
   crash on the primary's journaled write. Reads are served by the
   first alive shard, so the primary's journal outcome is exactly the
   update's visibility — the property the differential crash tests
   pin down. The key registry tracks what the journal protocol
   promises survives. Under a transport each replica write is a
   message with its own idempotency token; one that cannot be
   delivered within the retry budget parks in the shard's repair
   queue, and [fallback] supplies the router's reply for a parked
   primary. *)
(* pdm-lint: domain local — placement epoch state advanced only by the router domain *)
let update t key ~on_survive ~fallback ~secondary ~primary =
  begin_window t 1;
  let ids = placement t key in
  let alive =
    List.filter_map
      (fun id ->
        match List.assoc_opt id t.states with
        | Some s when s.alive -> Some s
        | _ -> None)
      ids
  in
  (match (ids, alive) with
   | head :: _, s :: _ when s.id <> head -> t.failovers <- t.failovers + 1
   | _ -> ());
  match alive with
  | [] -> raise (Unavailable key)
  | prim :: rest ->
    let crash = t.pending_crash in
    t.pending_crash <- None;
    (match t.net with
     | None -> List.iter (fun st -> ignore (secondary st)) rest
     | Some tr ->
       List.iter
         (fun st ->
           ignore
             (write_rpc t tr st
                ~fallback:(fun () -> true)
                (fun () -> secondary st)))
         rest);
    (match crash with
     | Some p -> Opd.set_crash prim.dict (Some p)
     | None -> ());
    let run_primary () =
      match t.net with
      | None -> primary prim
      | Some tr -> write_rpc t tr prim ~fallback (fun () -> primary prim)
    in
    (match run_primary () with
     | result ->
       if crash <> None then Opd.set_crash prim.dict None;
       on_survive ();
       net_sanity t;
       result
     | exception Journal.Crashed ->
       (* the registry mirrors the journal outcome: a surviving update
          is reflected, a vanished one is not (the key was never added
          / never removed) *)
       (match crash with
        | Some p when crash_survives p -> on_survive ()
        | _ -> ());
       (* the secondaries were written before the primary crashed, so
          the replicas of this key may now disagree with the journal
          outcome; remember it for the write-repair pass in {!recover},
          before a hedged or failover read can observe the split *)
       t.dirty <- key :: t.dirty;
       raise Journal.Crashed)

(* pdm-lint: domain local — routing bookkeeping mutated only by the single router domain *)
let insert t key value =
  ignore
    (update t key
       ~on_survive:(fun () -> t.registry <- IntSet.add key t.registry)
       ~fallback:(fun () -> true)
       ~secondary:(fun s -> Opd.insert s.dict key value; true)
       ~primary:(fun s -> Opd.insert s.dict key value; true))

(* pdm-lint: domain local — routing bookkeeping mutated only by the single router domain *)
let delete t key =
  update t key
    ~on_survive:(fun () -> t.registry <- IntSet.remove key t.registry)
    ~fallback:(fun () -> IntSet.mem key t.registry)
    ~secondary:(fun s -> ignore (Opd.delete s.dict key); true)
    ~primary:(fun s -> Opd.delete s.dict key)

(* pdm-lint: domain local — scatter-gather scratch and reply tables owned by the router for the call *)
let find_batch t keys =
  match keys with
  | [] -> []
  | keys ->
    let n = List.length keys in
    begin_window t n;
    t.batches <- t.batches + 1;
    let answers = Array.make n None in
    (* route each position to its serving shard, grouping per shard in
       encounter order *)
    let groups = ref [] in
    (* (shard_state, (pos, key) list in reverse) assoc by shard id *)
    List.iteri
      (fun pos key ->
        t.direct_lookups <- t.direct_lookups + 1;
        match serving_states t (placement t key) ~count_failover:true with
        | [] -> raise (Unavailable key)
        | s :: _ ->
          (match List.assoc_opt s.id !groups with
           | Some cell -> cell := (pos, key) :: !cell
           | None -> groups := (s.id, ref [ (pos, key) ]) :: !groups))
      keys;
    (* scatter-gather: each shard's engine serves its group as one
       batched run; shards are independent machines, so the cluster
       pays the slowest shard's rounds. Under a transport the whole
       group is one logical exchange: a timed-out group is retried
       (the engine rounds of a lost reply were still honestly spent),
       and past the hedge threshold its keys fall back to per-key
       hedged reads. *)
    let leftover = ref [] in
    let max_delta = ref 0 in
    List.iter
      (fun (id, cell) ->
        let s = state t id in
        let entries = List.rev !cell in
        let before = Engine.round s.engine in
        let serve () =
          List.iter
            (fun (_, key) ->
              ignore (Engine.submit s.engine (Engine.Lookup key)))
            entries;
          Engine.drain s.engine;
          Engine.take_outcomes s.engine
        in
        let fill outs =
          match
            List.iter2
              (fun (pos, _) (o : Engine.outcome) ->
                answers.(pos) <- o.Engine.value)
              entries outs
          with
          | () -> ()
          | exception Invalid_argument _ ->
            invalid_arg "Cluster.find_batch: engine answer arity"
        in
        (match t.net with
         | None -> fill (serve ())
         | Some tr ->
           let spec = Transport.spec_of tr in
           let budget =
             if spec.Transport.hedge_after >= 0 then
               min spec.Transport.hedge_after spec.Transport.max_attempts
             else spec.Transport.max_attempts
           in
           let op = Transport.window_start tr in
           let rec go a =
             if a >= budget then begin
               if spec.Transport.hedge_after >= 0 then
                 t.hedges <- t.hedges + 1;
               leftover := entries @ !leftover
             end
             else begin
               if a > 0 then charge_retry t tr ~op ~attempt:(a - 1);
               let d =
                 Transport.attempt tr ~shard:id ~write:false ~attempt:a
               in
               t.net_rounds <- t.net_rounds + d.Transport.cost;
               if d.Transport.request_delivered then begin
                 flush_repairs tr s;
                 let outs = serve () in
                 if d.Transport.replied then begin
                   Detector.record_reply t.detector id;
                   fill outs
                 end
                 else begin
                   Detector.record_miss t.detector id;
                   record_net_trace t s ~write:false ~attempt:a;
                   go (a + 1)
                 end
               end
               else begin
                 Detector.record_miss t.detector id;
                 record_net_trace t s ~write:false ~attempt:a;
                 go (a + 1)
               end
             end
           in
           go 0);
        max_delta := max !max_delta (Engine.round s.engine - before))
      (List.rev !groups);
    t.batch_rounds <- t.batch_rounds + !max_delta;
    (* per-key hedged fallback for timed-out groups, then the
       old-placement fallback for keys a crashed migration has not
       copied yet — both charged as the slowest shard's extra machine
       rounds *)
    let deltas = ref [] in
    (* remember each shard's round counter at its first direct read
       so the extra cost is the per-shard delta *)
    let rounds_of id =
      if not (List.mem_assoc id !deltas) then
        deltas := (id, Pdm.rounds_total (shard_machine t id)) :: !deltas
    in
    (match t.net with
     | None -> ()
     | Some tr ->
       List.iter
         (fun (pos, key) ->
           List.iter (fun (id, _) -> rounds_of id) t.states;
           match net_read t tr t.topology key ~count_failover:false with
           | Some v -> answers.(pos) <- v
           | None -> ())
         !leftover);
    (match t.inflight with
     | None -> ()
     | Some (old_topo, _) ->
       List.iteri
         (fun pos key ->
           if answers.(pos) = None then
             match t.net with
             | Some tr ->
               List.iter (fun (id, _) -> rounds_of id) t.states;
               (match net_read t tr old_topo key ~count_failover:false with
                | Some (Some _ as v) ->
                  t.fallback_hits <- t.fallback_hits + 1;
                  answers.(pos) <- v
                | Some None | None -> ())
             | None ->
               (match serving_states t (placement_in t old_topo key)
                        ~count_failover:false
                with
                | [] -> ()
                | s :: _ ->
                  rounds_of s.id;
                  (match Opd.find s.dict key with
                   | Some _ as v ->
                     t.fallback_hits <- t.fallback_hits + 1;
                     answers.(pos) <- v
                   | None -> ())))
         keys);
    let extra =
      List.fold_left
        (fun acc (id, before) ->
          match List.assoc_opt id t.states with
          | Some _ ->
            max acc (Pdm.rounds_total (shard_machine t id) - before)
          | None -> acc)
        0 !deltas
    in
    t.batch_rounds <- t.batch_rounds + extra;
    net_sanity t;
    Array.to_list answers

(* --- migrations --- *)

type migration_report = {
  moved_keys : int;
  primary_moves : int;
  keys_total : int;
  reads : int;
  inserts : int;
  deletes : int;
  skipped : int;
  rounds : int;
}

let total_rounds t =
  List.fold_left
    (fun acc (_, s) -> acc + Pdm.rounds_total (Opd.machine s.dict))
    0 t.states

let diff a b = List.filter (fun x -> not (List.mem x b)) a

(* Execute a plan's moves in order: read the value from the first
   responsive old-placement shard, copy it to the new shards, then
   drop the stale copies. [?crash:(k, p)] arms [p] on move [k]'s first
   journaled write. Re-running a whole plan is idempotent: re-copying
   rewrites identical bytes and re-deleting an absent key is a no-op,
   which is what makes {!recover}'s re-execution correct. Under a
   transport the sources are ordered by the suspicion detector
   (not an omniscient liveness oracle) and every copy/delete is a
   tokened message — an unreachable target's write parks in its
   repair queue instead of being lost. *)
let execute_plan ?crash t (plan : Migration.plan) =
  let reads = ref 0 and inserts = ref 0 and deletes = ref 0 in
  let skipped = ref 0 in
  let read_from st key =
    match t.net with
    | None -> Some (Opd.find st.dict key)
    | Some tr ->
      let spec = Transport.spec_of tr in
      read_rpc t tr st ~budget:spec.Transport.max_attempts
        ~attempts_used:(ref 0) key
  in
  let write_to st f =
    match t.net with
    | None -> f ()
    | Some tr ->
      ignore
        (write_rpc t tr st ~fallback:(fun () -> true) (fun () -> f (); true))
  in
  (* first source whose read exchange answers *)
  let rec source_value states key =
    match states with
    | [] -> None
    | st :: rest ->
      (match read_from st key with
       | Some answer -> Some (st, answer)
       | None -> source_value rest key)
  in
  List.iteri
    (fun i (mv : Migration.move) ->
      let armed =
        ref (match crash with Some (k, p) when k = i -> Some p | _ -> None)
      in
      let journaled_write s f =
        match !armed with
        | Some p when Opd.journaled s.dict ->
          armed := None;
          Opd.set_crash s.dict (Some p);
          (* a Crashed from [f] leaves the point armed; recover's
             per-shard Opd.recover clears it *)
          f ();
          Opd.set_crash s.dict None
        | _ -> f ()
      in
      match
        source_value
          (serving_states t mv.from_shards ~count_failover:false)
          mv.key
      with
      | None -> incr skipped
      | Some (src, answer) ->
        (match answer with
         | None -> incr skipped  (* already drained, or never stored *)
         | Some value ->
           ignore src;
           incr reads;
           List.iter
             (fun id ->
               match List.assoc_opt id t.states with
               | Some s when s.alive ->
                 write_to s (fun () ->
                     journaled_write s (fun () ->
                         Opd.insert s.dict mv.key value));
                 incr inserts
               | Some _ | None -> ())
             (diff mv.to_shards mv.from_shards);
           List.iter
             (fun id ->
               match List.assoc_opt id t.states with
               | Some s when s.alive ->
                 write_to s (fun () ->
                     journaled_write s (fun () ->
                         ignore (Opd.delete s.dict mv.key)));
                 incr deletes
               | Some _ | None -> ())
             (diff mv.from_shards mv.to_shards)))
    plan.moves;
  (!reads, !inserts, !deletes, !skipped)

let insert_sorted assoc entry =
  List.sort (fun (a, _) (b, _) -> compare a b) (entry :: assoc)

let change ?crash t new_topo =
  if crash <> None && not t.cfg.journaled then
    invalid_arg "Cluster: crash injection needs a journaled cluster";
  if t.inflight <> None then
    invalid_arg "Cluster: a migration is already in flight (recover first)";
  let old_topo = t.topology in
  let plan =
    Migration.plan ~old_topology:old_topo ~new_topology:new_topo
      ~seed:t.cfg.seed ~replicas:t.cfg.replicas
      ~keys:(IntSet.elements t.registry)
  in
  (* instantiate joining shards before any move needs them *)
  List.iter
    (fun (s : Topology.shard) ->
      if not (List.mem_assoc s.id t.states) then
        t.states <- insert_sorted t.states (s.id, make_state t.cfg s))
    (Topology.shards new_topo);
  t.inflight <- Some (old_topo, plan);
  t.topology <- new_topo;
  let rounds0 = total_rounds t in
  let reads, inserts, deletes, skipped = execute_plan ?crash t plan in
  t.inflight <- None;
  t.states <-
    List.filter
      (fun (id, _) ->
        let keep = Topology.mem new_topo id in
        if not keep then Detector.forget t.detector id;
        keep)
      t.states;
  { moved_keys = Migration.moved_keys plan;
    primary_moves = Migration.primary_moves plan;
    keys_total = plan.keys_considered; reads; inserts; deletes; skipped;
    rounds = total_rounds t - rounds0 }

let add_shard ?crash t shard = change ?crash t (Topology.add_shard t.topology shard)

let remove_shard ?crash t id =
  if t.cfg.replicas > Topology.count t.topology - 1 then
    invalid_arg "Cluster.remove_shard: would leave fewer shards than replicas";
  change ?crash t (Topology.remove_shard t.topology id)

let reweight ?crash t id ~weight =
  change ?crash t (Topology.reweight t.topology id ~weight)

let migration_in_flight t = t.inflight <> None

let recover t =
  (* dead shards stay dead: their disks refuse IO, and the data lives
     on the surviving replicas — only live shards run journal recovery *)
  let outcomes =
    List.filter_map
      (fun (_, s) -> if s.alive then Some (Opd.recover s.dict) else None)
      t.states
  in
  let replayed =
    List.fold_left
      (fun acc o -> match o with `Replayed n -> acc + n | _ -> acc)
      0 outcomes
  in
  let combined =
    if replayed > 0 then `Replayed replayed
    else if List.exists (fun o -> o = `Discarded) outcomes then `Discarded
    else `Clean
  in
  (match t.inflight with
   | None -> ()
   | Some (_, plan) ->
     let (_ : int * int * int * int) = execute_plan t plan in
     t.inflight <- None;
     t.states <-
       List.filter (fun (id, _) -> Topology.mem t.topology id) t.states);
  (* write-repair: an update that crashed mid-write left its
     secondaries ahead of (or behind) the primary's journal outcome.
     Journal recovery above settled the authoritative copy — the first
     alive replica in placement order — so force the others back into
     agreement before any hedged or failover read can serve the
     stale side. *)
  List.iter
    (fun key ->
      let alive =
        List.filter_map
          (fun id ->
            match List.assoc_opt id t.states with
            | Some s when s.alive -> Some s
            | _ -> None)
          (placement t key)
      in
      match alive with
      | [] | [ _ ] -> ()
      | auth :: rest ->
        (match Opd.find auth.dict key with
         | Some v -> List.iter (fun s -> Opd.insert s.dict key v) rest
         | None -> List.iter (fun s -> ignore (Opd.delete s.dict key)) rest))
    t.dirty;
  t.dirty <- [];
  combined

type stats = {
  shards : int;
  keys : int;
  batches : int;
  batch_rounds : int;
  net_rounds : int;
  direct_lookups : int;
  retries : int;
  hedges : int;
  failovers : int;
  fallback_hits : int;
  suspicions : int;
  heals : int;
  queued_repairs : int;
  shard_rounds : (int * int) list;
}

let stats t =
  { shards = List.length t.states; keys = size t; batches = t.batches;
    batch_rounds = t.batch_rounds; net_rounds = t.net_rounds;
    direct_lookups = t.direct_lookups; retries = t.retries;
    hedges = t.hedges; failovers = t.failovers;
    fallback_hits = t.fallback_hits;
    suspicions = Detector.suspicions t.detector;
    heals = Detector.heals t.detector; queued_repairs = t.queued_repairs;
    shard_rounds =
      List.map
        (fun (id, s) -> (id, Pdm.rounds_total (Opd.machine s.dict)))
        t.states }

let transport_stats t = Option.map Transport.stats t.net

let trace_events t =
  let evs =
    List.concat_map
      (fun (_, s) ->
        match Pdm.trace (Opd.machine s.dict) with
        | Some tr -> Trace.events tr
        | None -> [])
      t.states
  in
  List.sort
    (fun (a : Trace.event) b ->
      if a.round <> b.round then compare a.round b.round
      else compare a.shard b.shard)
    evs
