(** Deterministic weighted-rendezvous placement with failure-domain
    aware replica selection.

    Every shard [s] of weight [w] owns [w] virtual points; the score
    of [s] for key [k] is the maximum of the [w] keyed hashes
    [hash3 ~seed k s.id j] for [j < w]. The key's primary shard is the
    score argmax — so each of the topology's [W] virtual points is
    equally likely to win, and shard [s] serves exactly [w/W] of the
    key space in expectation. Because scores are keyed by {e stable
    shard id} (never by position), adding, removing or reweighting a
    shard only reassigns the keys whose winning point changed: the
    moved fraction under [add_shard s] is [w_s / W'], the rendezvous
    minimal-disruption property the migration plan is measured
    against.

    Integer hashes only — no floats — so placement is bit-identical
    across platforms and processes (the qcheck determinism property
    rebuilds the topology from its spec string and re-derives every
    placement).

    Replicas: shards are ranked by score and the replica set is chosen
    greedily under failure-domain constraints — first pass requires
    distinct racks, a second pass relaxes to distinct hosts, a final
    pass to distinct shards — so [r] copies land as far apart as the
    topology allows, and the selection degrades gracefully on small
    topologies instead of failing. *)

val score : seed:int -> key:int -> Topology.shard -> int
(** Max of the shard's [weight] virtual-point hashes — non-negative,
    62-bit. *)

val rank : Topology.t -> seed:int -> int -> Topology.shard list
(** All shards, best score first; ties (vanishingly rare) broken by
    smaller id. *)

val replicas : Topology.t -> seed:int -> r:int -> int -> int list
(** [replicas topo ~seed ~r key] is the key's replica shard ids, best
    first; the head is the primary. Length [min r (count topo)];
    [r] must be >= 1. *)

val primary : Topology.t -> seed:int -> int -> int
(** Head of {!replicas}. *)
