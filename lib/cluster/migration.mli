(** Deterministic migration plans for topology changes.

    A plan is a pure function of the old topology, the new topology,
    the placement seed, the replication factor and the sorted key set:
    it lists exactly the keys whose placement (the ordered replica
    list) changes, each with its old and new placements — a pure
    reorder (same set, new primary) costs routing only, so
    {!moved_keys} counts the stricter set changes that actually copy
    data. Rendezvous hashing keyed by stable shard
    id makes the plan minimal-disruption: keys whose winning virtual
    points are untouched by the change do not appear. The cluster
    executes a plan copy-then-delete through the per-shard journals
    (see {!Cluster}), so re-running a whole plan is idempotent — the
    crash-recovery story for mid-migration failures. *)

type move = {
  key : int;
  from_shards : int list;  (** Old placement, primary first. *)
  to_shards : int list;  (** New placement, primary first. *)
}

type plan = {
  moves : move list;  (** Ascending key. *)
  old_version : int;
  new_version : int;
  keys_considered : int;  (** Size of the key set the plan scanned. *)
}

val plan :
  old_topology:Topology.t ->
  new_topology:Topology.t ->
  seed:int ->
  replicas:int ->
  keys:int list ->
  plan
(** [keys] need not be sorted or distinct; the plan is over the
    distinct keys, ascending. *)

val moved_keys : plan -> int
(** Keys whose replica {e set} changed — each needs data copied. *)

val primary_moves : plan -> int
(** Keys whose {e primary} changed (a routing change even when the
    set is equal). *)
