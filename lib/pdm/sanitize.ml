type violation = { check : string; round : int; detail : string }

exception Sanitizer_violation of violation

let enabled = ref false

let set b = enabled := b

let active () = !enabled

let fail ~check ?(round = -1) detail =
  raise (Sanitizer_violation { check; round; detail })

let describe = function
  | Sanitizer_violation { check; round; detail } ->
    let where = if round < 0 then "" else Printf.sprintf " (round %d)" round in
    Some (Printf.sprintf "sanitizer: %s%s: %s" check where detail)
  | _ -> None

let with_sanitize b f =
  let prev = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := prev) f
