(** I/O accounting for the parallel disk model.

    The performance measure of the model — and of every bound in the
    paper — is the number of *parallel I/Os*: rounds in which each of
    the D disks transfers at most one block (or, in the parallel disk
    head model, rounds of at most D blocks in total). This module
    counts those rounds, and also raw block transfers, so experiments
    can report both.

    Counters are mutable; {!snapshot} captures an immutable view so the
    cost of a single operation can be measured as a difference. *)

type t

type snapshot = {
  parallel_reads : int;   (** read rounds *)
  parallel_writes : int;  (** write rounds *)
  block_reads : int;      (** individual blocks read *)
  block_writes : int;     (** individual blocks written *)
}

val create : unit -> t

val reset : t -> unit

val add_read_round : t -> blocks:int -> rounds:int -> unit
(** Record [rounds] parallel read I/Os transferring [blocks] blocks in
    total. Used by the simulator; not normally called by clients. *)

val add_write_round : t -> blocks:int -> rounds:int -> unit

val snapshot : t -> snapshot

val diff : after:snapshot -> before:snapshot -> snapshot
(** Component-wise subtraction. *)

val parallel_ios : snapshot -> int
(** Total parallel I/Os: read rounds + write rounds. *)

val zero : snapshot

val add : snapshot -> snapshot -> snapshot

val pp : Format.formatter -> snapshot -> unit

val measure : t -> (unit -> 'a) -> 'a * snapshot
(** [measure stats f] runs [f] and returns its result together with the
    I/O counted during the call. *)
