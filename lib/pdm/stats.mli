(** I/O accounting for the parallel disk model.

    The performance measure of the model — and of every bound in the
    paper — is the number of *parallel I/Os*: rounds in which each of
    the D disks transfers at most one block (or, in the parallel disk
    head model, rounds of at most D blocks in total). This module
    counts those rounds, raw block transfers, and — because the whole
    point of deterministic load balancing is that no single disk
    becomes a hot spot — per-disk block counters, so experiments can
    report balance as well as totals.

    Counters are mutable; {!snapshot} captures an immutable view so the
    cost of a single operation can be measured as a difference. *)

type t

type snapshot = {
  parallel_reads : int;   (** read rounds *)
  parallel_writes : int;  (** write rounds *)
  block_reads : int;      (** individual blocks read *)
  block_writes : int;     (** individual blocks written *)
  disk_reads : int array;   (** blocks read, per disk *)
  disk_writes : int array;  (** blocks written, per disk *)
}

val create : unit -> t

val reset : t -> unit

val add_read_round : t -> blocks:int -> rounds:int -> unit
(** Record [rounds] parallel read I/Os transferring [blocks] blocks in
    total. Used by the simulator; not normally called by clients. *)

val add_write_round : t -> blocks:int -> rounds:int -> unit

val add_disk_read : t -> disk:int -> blocks:int -> unit
(** Attribute [blocks] read blocks to one disk. The per-disk arrays
    grow on demand, so one stats object can serve machines of
    different widths. *)

val add_disk_write : t -> disk:int -> blocks:int -> unit

val snapshot : t -> snapshot

val diff : after:snapshot -> before:snapshot -> snapshot
(** Component-wise subtraction (per-disk arrays are padded to the
    wider of the two). *)

val parallel_ios : snapshot -> int
(** Total parallel I/Os: read rounds + write rounds. *)

val zero : snapshot

val add : snapshot -> snapshot -> snapshot

val disk_totals : snapshot -> int array
(** Blocks transferred per disk, reads + writes. *)

type occupancy = { max_load : int; mean_load : float }

val occupancy : snapshot -> occupancy option
(** Max and mean of {!disk_totals}; [None] when no per-disk traffic
    was recorded. A max/mean ratio near 1 is a balanced run. *)

val pp : Format.formatter -> snapshot -> unit
(** Totals, plus the max/mean disk-occupancy summary when per-disk
    counters are present. *)

val measure : t -> (unit -> 'a) -> 'a * snapshot
(** [measure stats f] runs [f] and returns its result together with the
    I/O counted during the call. *)
