module Prng = Pdm_util.Prng

type disk_fault = {
  transient_read_prob : float;
  corrupt_read_prob : float;
  fail : bool;
  straggle : int;
}

type spec = {
  seed : int;
  max_retries : int;
  disks : (int * disk_fault) list;
}

let healthy =
  { transient_read_prob = 0.0; corrupt_read_prob = 0.0; fail = false;
    straggle = 1 }

let spec ?(seed = 0) ?(max_retries = 8) ?(transient = []) ?(corrupt = [])
    ?(fail = []) ?(stragglers = []) () =
  let tbl = Hashtbl.create 8 in
  let get d = Option.value (Hashtbl.find_opt tbl d) ~default:healthy in
  List.iter
    (fun (d, p) ->
      if p < 0.0 || p >= 1.0 then
        invalid_arg "Fault.spec: transient probability must be in [0, 1)";
      Hashtbl.replace tbl d { (get d) with transient_read_prob = p })
    transient;
  List.iter
    (fun (d, p) ->
      if p < 0.0 || p > 1.0 then
        invalid_arg "Fault.spec: corrupt probability must be in [0, 1]";
      Hashtbl.replace tbl d { (get d) with corrupt_read_prob = p })
    corrupt;
  List.iter
    (fun (d, k) ->
      if k < 1 then invalid_arg "Fault.spec: straggle factor must be >= 1";
      Hashtbl.replace tbl d { (get d) with straggle = k })
    stragglers;
  List.iter (fun d -> Hashtbl.replace tbl d { (get d) with fail = true }) fail;
  if max_retries < 0 then invalid_arg "Fault.spec: max_retries must be >= 0";
  { seed;
    max_retries;
    disks =
      List.sort compare (Hashtbl.fold (fun d f acc -> (d, f) :: acc) tbl []) }

let disk_fault s d =
  Option.value (List.assoc_opt d s.disks) ~default:healthy

let is_noop s = List.for_all (fun (_, f) -> f = healthy) s.disks

(* Map a keyed hash of (disk, block, attempt) to [0, 1); the schedule
   must not depend on evaluation order, so no stream state. *)
let resolution = 1 lsl 30

let keyed_hit ~seed ~salt ~prob ~disk ~block ~attempt =
  prob > 0.0
  && (let h =
        Prng.hash3 ~seed:(seed + salt) disk block attempt land (resolution - 1)
      in
      float_of_int h < prob *. float_of_int resolution)

let transient_hit s ~disk ~block ~attempt =
  let f = disk_fault s disk in
  keyed_hit ~seed:s.seed ~salt:0 ~prob:f.transient_read_prob ~disk ~block
    ~attempt

let corrupt_hit s ~disk ~block ~attempt =
  let f = disk_fault s disk in
  keyed_hit ~seed:s.seed ~salt:0xc0447 ~prob:f.corrupt_read_prob ~disk
    ~block ~attempt

(* Silent corruption: the transfer "succeeds" but the delivered block
   is mangled — rotated one cell — so only an integrity envelope can
   tell. The stored data is untouched (the damage is on the wire). *)
let mangle = function
  | None -> None
  | Some slots ->
    let n = Array.length slots in
    if n < 2 then Some slots
    else Some (Array.init n (fun i -> slots.((i + n - 1) mod n)))

(* pdm-lint: allow R7 — the wrapped read/write closures only ever run
   inside the scheduler's perform step, which charges every attempt
   against the round ledger before invoking them *)
let wrap s (b : 'a Backend.t) : 'a Backend.t =
  let f = disk_fault s b.Backend.disk in
  let disk = b.Backend.disk in
  { b with
    Backend.name = Printf.sprintf "fault(%s)" b.Backend.name;
    cost = f.straggle * b.Backend.cost;
    max_retries = s.max_retries;
    read =
      (fun ~attempt block ->
        if f.fail then Backend.Lost
        else if transient_hit s ~disk ~block ~attempt then Backend.Transient
        else
          match b.Backend.read ~attempt block with
          | Backend.Data d when corrupt_hit s ~disk ~block ~attempt ->
            Backend.Data (mangle d)
          | outcome -> outcome);
    write =
      (fun block slots ->
        if f.fail then
          raise (Backend.Disk_failed { disk; block; round = -1 })
        else b.Backend.write block slots) }
