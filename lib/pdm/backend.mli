(** Pluggable per-disk storage backends.

    Each of the D disks of a {!Pdm.t} machine is one backend: a record
    of closures implementing block reads and writes over
    [blocks_per_disk] block slots. The default backend ({!memory}) is
    the original in-memory array; {!Fault.wrap} layers a deterministic
    fault schedule (transient read errors, silent corruption, permanent
    failure, straggling) on top of any backend without the machine — or
    the dictionaries above it — knowing.

    Backends deal in {e raw} block arrays: the machine layer owns all
    copying, so a backend never hands a caller an alias it may mutate
    through the counted API. [peek]/[poke]/[dump] bypass both
    accounting and fault injection; they exist for tests, bulk loading
    and persistence. *)

type error = { disk : int; block : int; round : int }
(** Where an I/O finally failed. [block] and [round] are [-1] when the
    failure is not tied to a specific block transfer or counted round
    (for instance a write issued outside the round scheduler). *)

exception Disk_failed of error
(** Raised when an I/O needs a permanently failed disk and no replica
    can serve it. *)

exception Retries_exhausted of { disk : int; block : int; attempts : int;
                                 round : int }
(** Raised when a block read kept failing transiently past the
    backend's retry budget and no replica could take over. *)

exception Corrupt_block of error
(** Raised when a block failed its integrity check and no intact
    replica remained. Only machines created with [?integrity] can
    detect — and therefore raise — corruption. *)

val describe : exn -> string option
(** One-line human description of the three structured storage errors
    above ([None] for any other exception) — shared by CLI error
    handlers. *)

type 'a outcome =
  | Data of 'a option array option
      (** Transfer succeeded; [None] = block never written. *)
  | Transient
      (** Transfer failed this attempt; the scheduler re-issues the
          block in a later round (charging that round honestly). *)
  | Lost  (** The disk is permanently gone. *)

type 'a t = {
  name : string;  (** For trace output and error messages. *)
  disk : int;  (** Index of the disk this backend serves. *)
  blocks : int;  (** Capacity in blocks. *)
  read : attempt:int -> int -> 'a outcome;
      (** [read ~attempt b] attempts to fetch block [b]; [attempt]
          numbers retries from 0 so fault schedules are deterministic
          per attempt. The returned array is live — callers copy. *)
  write : int -> 'a option array -> unit;
      (** Store a block the backend may keep (already copied by the
          caller). Raises {!Disk_failed} on a dead disk. *)
  cost : int;
      (** Rounds one block transfer occupies on this disk (1 for a
          healthy disk, k for a k× straggler). *)
  max_retries : int;
      (** Transient-failure budget per block read before
          {!Retries_exhausted}. *)
  peek : int -> 'a option array option;
      (** Uncounted, fault-free raw access (do not mutate). *)
  poke : int -> 'a option array option -> unit;
      (** Uncounted, fault-free raw store. *)
  dump : unit -> 'a option array option array;
      (** The raw block store, for persistence (live, do not mutate). *)
  exists : int -> bool;
      (** Uncounted "was this block ever written" test — cheaper than
          [peek] on backends that would otherwise decode the block. *)
  barrier : unit -> unit;
      (** Durability barrier: returns once every preceding [write] and
          [poke] is on stable storage ([fsync]/[msync] on real-I/O
          backends, a no-op in memory). Uncounted — PDM rounds model
          transfers, not flushes. *)
}

type 'a factory = blocks:int -> slots:int -> (int -> 'a t) option
(** How machine constructors ask for non-default storage without
    knowing its geometry up front: {!Pdm.create} calls the factory with
    the physical blocks-per-disk and slots-per-block it computed
    (including replica rows and integrity overhead) and uses the
    returned per-disk constructor, or the built-in {!memory} disks when
    the factory answers [None] (the "mem" factory). *)

val memory : disk:int -> blocks:int -> 'a t
(** Fresh all-empty in-memory backend — the default disk. *)

val of_store : disk:int -> 'a option array option array -> 'a t
(** In-memory backend over an existing store (used when loading a
    persisted machine). The array is owned by the backend. *)

val dead : disk:int -> blocks:int -> 'a t
(** A disk killed at run time ({!Pdm.kill_disk}): reads answer [Lost],
    writes raise {!Disk_failed}, and — unlike a {!Fault}-failed disk —
    even [peek] finds nothing: the platter is gone, recovery must come
    from replicas. *)
