(** Write-ahead journal for crash-consistent multi-block updates.

    A dictionary update that rewrites several blocks (directory +
    field blocks) is not atomic on its own: a crash between the two
    writes leaves the structure torn. The journal fixes this with the
    classic redo-log protocol, entirely inside the machine's counted
    I/O:

    + the batch is flattened to an int stream and logged into the
      journal's striped data region;
    + the header block is written {e last} — one block, the model's
      atomicity unit — naming the batch (length + keyed checksum).
      This is the commit point;
    + the batch is applied to its real addresses;
    + the header is cleared.

    {!recover} (run after a crash, or any restart) reads the header:
    a committed batch is decoded, verified against its checksum and
    re-applied — replaying a batch that was already applied rewrites
    the same bytes, so recovery is idempotent — while a torn or stale
    log is discarded. A crash at {e any} of the injectable points
    therefore leaves the structure either wholly before or wholly
    after the update.

    The journal occupies rows [block_offset .. block_offset + 1 +
    ceil(capacity_blocks / D) - 1] on every logical disk; the creator
    of the machine carves that region out, exactly as dictionaries
    sharing a machine carve out disk offsets. On a replicated or
    checksummed machine the journal blocks are replicated and sealed
    like any other block. Specialised to [int] machines — the cell
    type of every dictionary — because the log must encode addresses
    and lengths into cells. *)

exception Crashed
(** Raised by {!log_and_apply} at the requested {!crash_point}. The
    handle should be discarded; run {!recover} as a restart would. *)

type crash_point =
  | Before_log  (** Nothing durable yet: update vanishes. *)
  | During_log of int
      (** Torn log write — only the first k journal blocks land (no
          crash if the batch needs ≤ k). Header never committed. *)
  | After_log  (** Log written, commit header not: update vanishes. *)
  | After_commit
      (** Committed, target blocks untouched: recovery replays. *)
  | During_apply of int
      (** Committed, only k target blocks applied: recovery replays
          (no crash if the batch has ≤ k blocks). *)
  | After_apply
      (** Applied, header not cleared: recovery replays — and must be
          idempotent. *)

type t

val create : int Pdm.t -> block_offset:int -> capacity_blocks:int -> t
(** A journal handle over the given region. Validates that the region
    (1 header row + ⌈capacity/D⌉ data rows) fits the machine and that
    a block can hold the header. *)

val rows : disks:int -> capacity_blocks:int -> int
(** Rows of each disk the region occupies — for sizing machines. *)

val capacity_blocks : t -> int
val block_offset : t -> int

val log_and_apply :
  t -> ?crash:crash_point -> (Pdm.addr * int option array) list -> unit
(** Durably apply one batch (the write-ahead protocol above). All
    I/O — log, commit, apply, clear — is counted on the machine.
    Raises [Invalid_argument] if the encoded batch exceeds the
    journal's capacity, and {!Crashed} at the injected crash point,
    if any. *)

val recover :
  int Pdm.t ->
  block_offset:int ->
  capacity_blocks:int ->
  [ `Clean | `Discarded | `Replayed of int ]
(** Crash recovery (safe to run on a clean machine). [`Clean]: no log
    present. [`Discarded]: an uncommitted or corrupt log was thrown
    away (the interrupted update never happened). [`Replayed n]: a
    committed batch of [n] blocks was re-applied (the update wholly
    happened). Running it twice is the same as running it once. *)
