module Imath = Pdm_util.Imath
module Prng = Pdm_util.Prng

exception Crashed

type crash_point =
  | Before_log
  | During_log of int
  | After_log
  | After_commit
  | During_apply of int
  | After_apply

type t = {
  machine : int Pdm.t;
  block_offset : int;
  capacity_blocks : int;
  mutable seq : int;
}

(* On-disk layout: one striped region of rows [block_offset ..
   block_offset + rows - 1] across all D logical disks. Row
   [block_offset] holds the header block (on disk 0 only); data slot
   [s] lives at {disk = s mod D; block = block_offset + 1 + s / D},
   so a batch of k blocks logs in ceil(k / D) parallel rounds. The
   header is written strictly after the data and is the commit point:
   the atomicity unit of the model is one block, and the whole header
   fits in one. *)
let rows ~disks ~capacity_blocks = 1 + Imath.cdiv capacity_blocks disks

let header_addr t = { Pdm.disk = 0; block = t.block_offset }

let slot_addr t s =
  { Pdm.disk = s mod Pdm.disks t.machine;
    block = t.block_offset + 1 + (s / Pdm.disks t.machine) }

let magic_committed = 0x10ada
let magic_empty = 0x0e371

(* Header cells: [magic; seq; data blocks; stream length; stream
   checksum]. *)
let header_cells = 5

let create machine ~block_offset ~capacity_blocks =
  if capacity_blocks < 1 then
    invalid_arg "Journal.create: capacity_blocks must be >= 1";
  if block_offset < 0 then
    invalid_arg "Journal.create: block_offset must be >= 0";
  if Pdm.block_size machine < header_cells then
    invalid_arg "Journal.create: block_size too small for the header";
  let needed =
    block_offset + rows ~disks:(Pdm.disks machine) ~capacity_blocks
  in
  if needed > Pdm.blocks_per_disk machine then
    invalid_arg "Journal.create: region exceeds blocks_per_disk";
  { machine; block_offset; capacity_blocks; seq = 0 }

let capacity_blocks t = t.capacity_blocks
let block_offset t = t.block_offset

(* The logged batch is flattened to an int stream: per entry [disk;
   block; B cells], a cell encoded as 0 (empty) or v + 1. The stream
   is padded to whole blocks with zeros; its length and keyed checksum
   ride in the header so a replay can trust what it decodes. *)
let entry_cells b = 2 + b

let checksum_stream cells =
  Array.fold_left (fun h c -> Prng.hash2 ~seed:h c 0x1093) 0x5ca1e cells

let encode t batch =
  let b = Pdm.block_size t.machine in
  let cells =
    List.concat_map
      (fun ({ Pdm.disk; block }, slots) ->
        if Array.length slots <> b then
          invalid_arg "Journal.log_and_apply: block has wrong length";
        disk :: block
        :: Array.to_list
             (Array.map (function None -> 0 | Some v -> v + 1) slots))
      batch
  in
  Array.of_list cells

let decode_stream machine cells =
  let b = Pdm.block_size machine in
  let per = entry_cells b in
  let n = Array.length cells / per in
  List.init n (fun i ->
      let base = i * per in
      let slots =
        Array.init b (fun j ->
            match cells.(base + 2 + j) with 0 -> None | v -> Some (v - 1))
      in
      ({ Pdm.disk = cells.(base); block = cells.(base + 1) }, slots))

let maybe_crash crash here = if crash = Some here then raise Crashed

let write_header t cells =
  let b = Pdm.block_size t.machine in
  let block = Array.make b None in
  Array.iteri (fun i c -> block.(i) <- Some c) cells;
  Pdm.write_one t.machine (header_addr t) block

let clear_header t =
  write_header t [| magic_empty; t.seq |]

(* pdm-lint: domain local — journal sequence advanced only by the owning scheduler thread *)
let log_and_apply t ?crash batch =
  maybe_crash crash Before_log;
  let machine = t.machine in
  let b = Pdm.block_size machine in
  let stream = encode t batch in
  let nblocks = Imath.cdiv (Array.length stream) b in
  if nblocks > t.capacity_blocks then
    invalid_arg "Journal.log_and_apply: batch exceeds journal capacity";
  t.seq <- t.seq + 1;
  let data_block i =
    Array.init b (fun j ->
        let k = (i * b) + j in
        Some (if k < Array.length stream then stream.(k) else 0))
  in
  let data =
    List.init nblocks (fun i -> (slot_addr t i, data_block i))
  in
  (match crash with
   | Some (During_log k) when k < nblocks ->
     (* torn log write: only the first k journal blocks reach disk *)
     List.iteri (fun i blk -> if i < k then Pdm.write machine [ blk ]) data;
     raise Crashed
   | _ -> if data <> [] then Pdm.write machine data);
  (* barrier before the commit record: the log payload must be stable
     before the header can claim it is replayable *)
  Pdm.barrier machine;
  maybe_crash crash After_log;
  write_header t
    [| magic_committed; t.seq; nblocks; Array.length stream;
       checksum_stream stream |];
  (* barrier on the commit point itself: once we start applying, a
     crash must find the committed header on stable storage *)
  Pdm.barrier machine;
  maybe_crash crash After_commit;
  (match crash with
   | Some (During_apply k) when k < List.length batch ->
     List.iteri (fun i blk -> if i < k then Pdm.write machine [ blk ]) batch;
     raise Crashed
   | _ -> if batch <> [] then Pdm.write machine batch);
  (* barrier before the header clears: the applied state must be
     stable before we discard the log that could rebuild it *)
  Pdm.barrier machine;
  maybe_crash crash After_apply;
  clear_header t

let read_header machine ~block_offset =
  let cells =
    Pdm.read_one machine { Pdm.disk = 0; block = block_offset }
  in
  let get i =
    if i < Array.length cells then cells.(i) else None
  in
  match get 0 with
  | Some m when m = magic_committed ->
    (match get 1, get 2, get 3, get 4 with
     | Some seq, Some nblocks, Some len, Some sum ->
       `Committed (seq, nblocks, len, sum)
     | _ -> `Torn)
  | Some m when m = magic_empty -> `Empty
  | None -> `Empty  (* never written: fresh machine *)
  | Some _ -> `Torn

let recover machine ~block_offset ~capacity_blocks =
  let t = create machine ~block_offset ~capacity_blocks in
  match read_header machine ~block_offset with
  | `Empty -> `Clean
  | `Torn ->
    clear_header t;
    `Discarded
  | `Committed (seq, nblocks, len, sum) ->
    t.seq <- seq;
    if nblocks > capacity_blocks || len > nblocks * Pdm.block_size machine
    then begin
      clear_header t;
      `Discarded
    end
    else begin
      let slots = List.init nblocks (fun i -> slot_addr t i) in
      let by_addr = Pdm.read machine slots in
      let b = Pdm.block_size machine in
      let cells =
        Array.init len (fun k ->
            let blk = List.assoc (slot_addr t (k / b)) by_addr in
            match blk.(k mod b) with Some v -> v | None -> 0)
      in
      if checksum_stream cells <> sum then begin
        (* a stale or damaged log must not be replayed *)
        clear_header t;
        `Discarded
      end
      else begin
        let batch = decode_stream machine cells in
        if batch <> [] then Pdm.write machine batch;
        (* replayed state must be stable before the log is discarded *)
        Pdm.barrier machine;
        clear_header t;
        `Replayed (List.length batch)
      end
    end
