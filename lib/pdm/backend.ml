type error = { disk : int; block : int; round : int }

exception Disk_failed of error

exception Retries_exhausted of { disk : int; block : int; attempts : int;
                                 round : int }

exception Corrupt_block of error

let pp_pos block round =
  let part name v = if v < 0 then "" else Printf.sprintf ", %s %d" name v in
  part "block" block ^ part "round" round

let describe = function
  | Disk_failed { disk; block; round } ->
    Some
      (Printf.sprintf "disk %d is permanently failed (no replica left%s)" disk
         (pp_pos block round))
  | Retries_exhausted { disk; block; attempts; round } ->
    Some
      (Printf.sprintf
         "disk %d gave up on block %d after %d attempts (no replica left%s)"
         disk block attempts (pp_pos (-1) round))
  | Corrupt_block { disk; block; round } ->
    Some
      (Printf.sprintf
         "disk %d block %d failed its checksum (no intact replica left%s)"
         disk block (pp_pos (-1) round))
  | _ -> None

type 'a outcome =
  | Data of 'a option array option
  | Transient
  | Lost

type 'a t = {
  name : string;
  disk : int;
  blocks : int;
  read : attempt:int -> int -> 'a outcome;
  write : int -> 'a option array -> unit;
  cost : int;
  max_retries : int;
  peek : int -> 'a option array option;
  poke : int -> 'a option array option -> unit;
  dump : unit -> 'a option array option array;
  exists : int -> bool;
  barrier : unit -> unit;
}

type 'a factory = blocks:int -> slots:int -> (int -> 'a t) option

let of_store ~disk store =
  { name = "memory";
    disk;
    blocks = Array.length store;
    read = (fun ~attempt:_ b -> Data store.(b));
    write = (fun b slots -> store.(b) <- Some slots);
    cost = 1;
    max_retries = 0;
    peek = (fun b -> store.(b));
    poke = (fun b slots -> store.(b) <- slots);
    dump = (fun () -> store);
    exists = (fun b -> store.(b) <> None);
    barrier = (fun () -> ()) }

let memory ~disk ~blocks = of_store ~disk (Array.make blocks None)

(* A disk that died at run time: its contents are unreadable even by
   [peek] — recovery must come from replicas elsewhere. *)
let dead ~disk ~blocks =
  { name = "dead";
    disk;
    blocks;
    read = (fun ~attempt:_ _ -> Lost);
    write =
      (fun block _ -> raise (Disk_failed { disk; block; round = -1 }));
    cost = 1;
    max_retries = 0;
    peek = (fun _ -> None);
    poke = (fun _ _ -> ());
    dump = (fun () -> Array.make blocks None);
    exists = (fun _ -> false);
    barrier = (fun () -> ()) }
