exception Disk_failed of int

exception Retries_exhausted of { disk : int; block : int; attempts : int }

type 'a outcome =
  | Data of 'a option array option
  | Transient
  | Lost

type 'a t = {
  name : string;
  disk : int;
  blocks : int;
  read : attempt:int -> int -> 'a outcome;
  write : int -> 'a option array -> unit;
  cost : int;
  max_retries : int;
  peek : int -> 'a option array option;
  poke : int -> 'a option array option -> unit;
  dump : unit -> 'a option array option array;
}

let of_store ~disk store =
  { name = "memory";
    disk;
    blocks = Array.length store;
    read = (fun ~attempt:_ b -> Data store.(b));
    write = (fun b slots -> store.(b) <- Some slots);
    cost = 1;
    max_retries = 0;
    peek = (fun b -> store.(b));
    poke = (fun b slots -> store.(b) <- slots);
    dump = (fun () -> store) }

let memory ~disk ~blocks = of_store ~disk (Array.make blocks None)
