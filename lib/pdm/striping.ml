type 'a t = { pdm : 'a Pdm.t }

let create pdm = { pdm }

let machine s = s.pdm

let superblock_size s = Pdm.disks s.pdm * Pdm.block_size s.pdm

let superblocks s = Pdm.blocks_per_disk s.pdm

let addrs_of s j = List.init (Pdm.disks s.pdm) (fun i -> { Pdm.disk = i; block = j })

let assemble s parts =
  let b = Pdm.block_size s.pdm in
  let out = Array.make (superblock_size s) None in
  List.iter
    (fun ((a : Pdm.addr), slots) ->
      Array.blit slots 0 out (a.disk * b) b)
    parts;
  out

let read s j = assemble s (Pdm.read s.pdm (addrs_of s j))

let write s j block =
  if Array.length block <> superblock_size s then
    invalid_arg "Striping.write: superblock has wrong length";
  let b = Pdm.block_size s.pdm in
  let parts =
    List.map
      (fun (a : Pdm.addr) -> (a, Array.sub block (a.disk * b) b))
      (addrs_of s j)
  in
  Pdm.write s.pdm parts

let read_many s js =
  let js = List.sort_uniq compare js in
  let all = List.concat_map (addrs_of s) js in
  let parts = Pdm.read s.pdm all in
  List.map
    (fun j ->
      let mine =
        List.filter (fun ((a : Pdm.addr), _) -> a.block = j) parts
      in
      (j, assemble s mine))
    js

let write_many s blocks =
  let b = Pdm.block_size s.pdm in
  List.iter
    (fun (_, block) ->
      if Array.length block <> superblock_size s then
        invalid_arg "Striping.write_many: superblock has wrong length")
    blocks;
  Pdm.write s.pdm
    (List.concat_map
       (fun (j, block) ->
         List.map
           (fun (a : Pdm.addr) -> (a, Array.sub block (a.disk * b) b))
           (addrs_of s j))
       blocks)
