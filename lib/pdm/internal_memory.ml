type t = {
  capacity : int option;
  mutable in_use : int;
  mutable peak : int;
}

let create ~capacity_words =
  if capacity_words < 0 then invalid_arg "Internal_memory.create";
  { capacity = Some capacity_words; in_use = 0; peak = 0 }

let unbounded () = { capacity = None; in_use = 0; peak = 0 }

(* Sanitizer cross-check: the accounting invariants 0 <= in_use <=
   capacity and peak >= in_use must hold after every mutation. The
   guards in [alloc]/[free] enforce them by construction; the sanitizer
   re-verifies so a future code path that skips a guard (or a capacity
   M silently exceeded) fails loudly instead of corrupting the
   internal-memory claims the experiments report. *)
let sanitize_check t =
  if Sanitize.active () then begin
    if t.in_use < 0 then
      Sanitize.fail ~check:"internal-memory"
        (Printf.sprintf "in_use went negative (%d words)" t.in_use);
    (match t.capacity with
     | Some cap when t.in_use > cap ->
       Sanitize.fail ~check:"internal-memory"
         (Printf.sprintf "accounting exceeds M: %d words in use, capacity %d"
            t.in_use cap)
     | Some _ | None -> ());
    if t.peak < t.in_use then
      Sanitize.fail ~check:"internal-memory"
        (Printf.sprintf "peak %d below in_use %d" t.peak t.in_use)
  end

let alloc t ~words =
  if words < 0 then invalid_arg "Internal_memory.alloc: negative size";
  let next = t.in_use + words in
  (match t.capacity with
   | Some cap when next > cap ->
     invalid_arg
       (Printf.sprintf
          "Internal_memory.alloc: %d words requested, %d available" words
          (cap - t.in_use))
   | Some _ | None -> ());
  t.in_use <- next;
  if next > t.peak then t.peak <- next;
  sanitize_check t

let free t ~words =
  if words < 0 || words > t.in_use then invalid_arg "Internal_memory.free";
  t.in_use <- t.in_use - words;
  sanitize_check t

let in_use t = t.in_use

let peak t = t.peak

let capacity t = t.capacity
