type t = {
  capacity : int option;
  mutable in_use : int;
  mutable peak : int;
}

let create ~capacity_words =
  if capacity_words < 0 then invalid_arg "Internal_memory.create";
  { capacity = Some capacity_words; in_use = 0; peak = 0 }

let unbounded () = { capacity = None; in_use = 0; peak = 0 }

let alloc t ~words =
  if words < 0 then invalid_arg "Internal_memory.alloc: negative size";
  let next = t.in_use + words in
  (match t.capacity with
   | Some cap when next > cap ->
     invalid_arg
       (Printf.sprintf
          "Internal_memory.alloc: %d words requested, %d available" words
          (cap - t.in_use))
   | Some _ | None -> ());
  t.in_use <- next;
  if next > t.peak then t.peak <- next

let free t ~words =
  if words < 0 || words > t.in_use then invalid_arg "Internal_memory.free";
  t.in_use <- t.in_use - words

let in_use t = t.in_use

let peak t = t.peak

let capacity t = t.capacity
