(** Striping: the D disks viewed as one logical disk with block size
    B·D.

    This is the classical way to exploit disk parallelism (Section 1):
    logical superblock [j] consists of physical block [j] on every
    disk, so reading or writing one superblock is exactly one parallel
    I/O. The hashing baselines and the B-tree store their nodes in
    superblocks.

    Within a superblock of length B·D, slots [i·B, (i+1)·B) live on
    disk [i]. *)

type 'a t

val create : 'a Pdm.t -> 'a t
(** View an existing machine through striping. I/O is charged to the
    machine's stats as usual. *)

val machine : 'a t -> 'a Pdm.t

val superblock_size : 'a t -> int
(** B·D items. *)

val superblocks : 'a t -> int
(** Number of logical superblocks (= blocks per disk). *)

val read : 'a t -> int -> 'a option array
(** [read s j] fetches superblock [j] in one parallel I/O. *)

val write : 'a t -> int -> 'a option array -> unit
(** [write s j block] stores superblock [j] in one parallel I/O. The
    array must have length [superblock_size s]. *)

val read_many : 'a t -> int list -> (int * 'a option array) list
(** Fetch several superblocks; [k] distinct superblocks cost [k]
    parallel I/Os (they collide on every disk). *)

val write_many : 'a t -> (int * 'a option array) list -> unit
(** Store several superblocks ([k] distinct ones cost [k] rounds).
    Duplicate indices are an error. *)
