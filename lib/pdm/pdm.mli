(** The parallel disk model machine (Vitter–Shriver).

    A machine has [disks] = D storage devices, each an array of
    [blocks_per_disk] blocks holding [block_size] = B items of type
    ['a]. One parallel I/O transfers at most one block per disk
    (independent-disks model) or at most D blocks in total (parallel
    disk *head* model, Aggarwal–Vitter, used by Section 5's striping
    discussion). Costs are charged to a {!Stats.t}.

    A request touching two blocks on the same disk in the
    independent-disks model is legal but costs two rounds; the
    simulator schedules the request into the fewest rounds possible and
    charges that many. Duplicate block addresses within one request are
    coalesced.

    Each disk is a first-class {!Backend.t}. The default is the
    original in-memory array; passing [?faults] wraps every disk in a
    deterministic fault schedule ({!Fault}), and passing or attaching
    [?trace] records every parallel round into a {!Trace.t} ring
    buffer.

    {2 Replication, integrity and repair}

    Passing [?replicas:r] stores every logical block on [r] distinct
    disks: replica [j] of logical [{disk = d; block = b}] lives on
    physical disk [(d + j) mod D], in that disk's [j]-th block region
    — the striped-offset version of the paper's d-choice placement,
    deterministic and metadata-free. Reads are served from the first
    replica whose disk is not known to be down; a failed transfer
    fails over to the next replica in an extra scheduled pass, so a
    lookup touching one dead disk costs at most 2× its healthy rounds
    (and, once the health cache has seen the disk down, goes straight
    to a survivor). Writes store all [r] replicas in one request and
    tolerate up to [r - 1] dead replica disks.

    Passing [?integrity] seals every stored block with a checksum
    envelope ([overhead] extra cells) and verifies it on every counted
    read: a mangled block reads as a retryable fault, failing over to
    another replica, and only when no intact replica remains does
    {!Backend.Corrupt_block} escape. {!Codec.Checksum} provides the
    standard envelope for [int] machines.

    [?spares] adds hot-spare disks (physical disks [D ..
    D + spares - 1]) that hold no data until {!scrub} re-homes
    replicas from dead or corrupt storage onto them, recording the
    moves in an in-memory remap table.

    Under faults, replication, integrity, spares, custom backends or
    tracing, requests run on a round-by-round scheduler: a transiently
    failed block read is re-issued in a later round and a straggling
    disk's transfers occupy k rounds each, so the charged parallel
    I/Os honestly include retries, slow hardware and degraded reads —
    the structures above the {!read}/{!write} API survive unchanged
    and simply cost more. When no replica can serve a block the
    structured exceptions of {!Backend} escape: {!Backend.Disk_failed},
    {!Backend.Retries_exhausted} or {!Backend.Corrupt_block}, each
    carrying disk, block and round. Without any of these features,
    requests take the original closed-form fast path and charge
    bit-identical costs to the pre-backend simulator.

    Blocks are exposed as ['a option array] copies of the {e payload}
    (checksum cells are stripped before the caller sees them): [None]
    marks an empty slot. Mutating a returned block does not change the
    disk; all updates go through {!write}, so every byte that reaches
    a disk is counted. [peek] and [poke] bypass accounting and fault
    injection and exist for tests and construction-time bulk loading
    only — production code paths never use them. *)

type model =
  | Independent_disks  (** one block per disk per round (the PDM) *)
  | Parallel_heads     (** any D blocks per round (disk head model) *)

type 'a t

type addr = { disk : int; block : int }
(** Address of one block. *)

type 'a integrity = {
  tag : string;  (** Envelope name, for error messages and docs. *)
  overhead : int;  (** Extra cells a sealed block carries. *)
  seal : 'a option array -> 'a option array;
      (** [seal payload] returns a fresh stored image (length
          [block_size + overhead]) protecting the payload. *)
  check : 'a option array -> 'a option array option;
      (** [check stored] re-derives the checksum: [Some payload]
          (fresh, length [block_size]) when intact, [None] when the
          stored bits are damaged. *)
}
(** A checksum envelope. [check (seal p) = Some p] must hold for all
    payloads, and any single-cell change to the stored image should
    make [check] answer [None]. *)

val create :
  ?model:model ->
  ?stats:Stats.t ->
  ?trace:Trace.t ->
  ?faults:Fault.spec ->
  ?backends:(int -> 'a Backend.t) ->
  ?factory:'a Backend.factory ->
  ?replicas:int ->
  ?spares:int ->
  ?integrity:'a integrity ->
  disks:int ->
  block_size:int ->
  blocks_per_disk:int ->
  unit ->
  'a t
(** Fresh machine with all slots empty. Defaults: [model =
    Independent_disks], a private stats object, no tracing, no faults,
    in-memory backends, [replicas = 1], [spares = 0], no integrity
    envelope. [backends] supplies a custom backend per physical disk
    (there are [disks + spares] of them, each with [replicas *
    blocks_per_disk] blocks; capacity and disk index must match);
    [factory] is the geometry-blind form — [create] calls it with the
    physical blocks-per-disk and sealed slot width it computed, and
    falls back to memory disks when it answers [None] ([backends] wins
    when both are given). [faults] wraps whatever backend each disk
    has. [replicas] must be between 1 and [disks] so the copies land
    on distinct disks. *)

val disks : 'a t -> int
(** Logical disk count D — the geometry dictionaries address. *)

val block_size : 'a t -> int
val blocks_per_disk : 'a t -> int
val model : 'a t -> model
val stats : 'a t -> Stats.t

val replicas : 'a t -> int
(** Copies stored per logical block (1 = unreplicated). *)

val spares : 'a t -> int
(** Hot-spare disks available to {!scrub} repair. *)

val physical_disks : 'a t -> int
(** [disks + spares] — the machine's real channel count. *)

val integrity : 'a t -> 'a integrity option

val trace : 'a t -> Trace.t option

val set_trace : 'a t -> Trace.t option -> unit
(** Attach or detach a round trace at run time. *)

val faults : 'a t -> Fault.spec option

val backend : 'a t -> int -> 'a Backend.t
(** The backend serving one physical disk (after fault wrapping). *)

val rounds_total : 'a t -> int
(** Parallel rounds executed by this machine since creation — the
    global round ids appearing in trace events. *)

val set_sanitize : bool -> unit
(** Turn the runtime honesty sanitizer on or off (process-global; see
    {!Sanitize}). When on, every machine cross-checks its charging on
    the fly — at most one block per disk per round, every touched
    block accounted, fast-path closed-form costs re-derived
    independently, integrity envelopes of the declared size — and
    raises {!Sanitize.Sanitizer_violation} on the first discrepancy.
    Off (the default) the checks cost nothing. Results and charged
    costs are identical with the sanitizer on or off. *)

val sanitize_enabled : unit -> bool

val read : 'a t -> addr list -> (addr * 'a option array) list
(** [read t addrs] fetches the requested blocks, charging the minimal
    number of parallel read rounds (plus any rounds injected faults,
    retries or replica failover cost). Unwritten blocks read as
    all-empty. The result lists each distinct requested address
    exactly once, in unspecified order. *)

val read_one : 'a t -> addr -> 'a option array
(** Read a single block: exactly one parallel I/O (more under faults
    or failover). *)

val replica_disks : 'a t -> addr -> int list
(** The physical disk currently holding each replica of the logical
    block, in replica order (index [j] is replica [j], following any
    repair-time remapping). A scheduler can combine this with
    {!disk_down} to place a read on the least-loaded healthy copy. *)

val read_preferring : 'a t -> (addr * int) list -> (addr * 'a option array) list
(** [read_preferring t [(a, j); ...]] is {!read} with the replica
    choice made by the caller: block [a] is served by replica [j]
    when that disk answers, failing over to the remaining replicas
    (in home order) otherwise. Duplicate addresses keep their first
    preference. On an unreplicated machine every preference must be 0
    and the call is exactly {!read}. The batched query engine uses
    this to place each fetch on the least-loaded healthy replica
    disk. *)

val write : 'a t -> (addr * 'a option array) list -> unit
(** [write t blocks] stores the given blocks — all replicas of each —
    charging the scheduled parallel write rounds. Each array must have
    length [block_size]; duplicate addresses are an error. The write
    succeeds as long as at least one replica of every block lands. *)

val write_one : 'a t -> addr -> 'a option array -> unit

val add_write_listener : 'a t -> (addr -> unit) -> unit
(** Register a callback invoked with the logical address of every
    block whose stored bits change: counted writes (including journal
    replay, which applies through {!write}), uncounted {!poke}s, and
    scrub-repair rewrites. {!Cache} registers one to stay coherent
    with writers that bypass it. Listeners run synchronously, must
    not touch the machine, and cannot be removed — attach them to
    objects that live as long as the machine. *)

val rounds_for : 'a t -> addr list -> int
(** Number of parallel I/Os {!read} would charge for these addresses
    (after coalescing duplicates) on a healthy unreplicated machine,
    without performing the access. On a faulty or degraded machine
    this is the lower bound: retries, straggling and failover can
    only add rounds. *)

val peek : 'a t -> addr -> 'a option array
(** Uncounted, fault-free read of the first intact replica — tests
    and invariant checks only. *)

val poke : 'a t -> addr -> 'a option array -> unit
(** Uncounted, fault-free write (of every replica, sealed) — tests
    and bulk initialisation only. *)

val barrier : 'a t -> unit
(** Durability barrier on every disk: returns once all preceding
    writes are on stable storage (fsync/msync on real-I/O backends, a
    no-op in memory). Uncounted — PDM rounds model block transfers,
    not flushes. The journal issues this at its commit points. *)

val allocated_blocks : 'a t -> int
(** Number of {e physical} blocks ever written (space usage — an
    r-replicated block counts r times). *)

val capacity_items : 'a t -> int
(** D × blocks_per_disk × B (logical payload capacity). *)

val iter_allocated : 'a t -> (addr -> 'a option array -> unit) -> unit
(** Uncounted iteration over written logical blocks (first intact
    replica of each; do not mutate) — used by verification code and
    rebuild bulk readers that account for their I/O separately. *)

(** {2 Failure, damage and repair} *)

val kill_disk : 'a t -> int -> unit
(** Kill a physical disk at run time: its contents are gone (even
    [peek] finds nothing), reads answer Lost and fail over to
    replicas, writes to it are skipped (the block survives on its
    other replicas). Unlike a {!Fault}-failed disk, the platter data
    is destroyed — repair must re-replicate from survivors. *)

val disk_down : 'a t -> int -> bool
(** Health cache: has this machine observed the disk dead? ([true]
    immediately after {!kill_disk}; a {!Fault}-failed disk turns
    [true] the first time a transfer finds it lost.) *)

val damage_stored : 'a t -> addr -> replica:int -> unit
(** Corrupt the stored bits of one replica in place (tests and
    experiments: latent sector rot, as opposed to {!Fault}'s wire
    corruption). Undetectable unless the machine has an [?integrity]
    envelope. No-op on a never-written or destroyed block. *)

val remapped_replicas : 'a t -> int
(** Replicas living away from their home address after repair. *)

type scrub_report = {
  scanned_blocks : int;  (** Logical blocks examined. *)
  intact_replicas : int;  (** Replicas read back and verified. *)
  corrupt_replicas : int;  (** Replicas failing their checksum. *)
  missing_replicas : int;  (** Replicas on dead disks or unreadable. *)
  repaired_replicas : int;  (** Bad replicas rewritten and verified. *)
  remapped_replicas : int;  (** … of which moved to a spare disk. *)
  unrepairable_replicas : int;
      (** Bad replicas with nowhere to go (no spare left) or whose
          repair write could not be verified. *)
  lost_blocks : int;  (** Logical blocks with no intact replica. *)
  scan_rounds : int;  (** Parallel I/Os spent verifying. *)
  repair_rounds : int;  (** Parallel I/Os spent re-replicating. *)
}

val scrub : 'a t -> scrub_report
(** Sweep every allocated logical block: read all its replicas,
    verify integrity, and rewrite every bad replica from an intact
    one — in place when its disk still answers, onto a spare disk
    when it does not. All verification and repair I/O is charged
    through the normal scheduler and reported as the repair budget.
    After a scrub with enough spare capacity, every surviving block
    is back to full replication. *)

val save_to_file : 'a t -> string -> unit
(** Persist the machine (geometry, replication layout + every block)
    to a file with [Marshal]. I/O counters are reset on load; the
    usual [Marshal] caveats apply (same program version, matching
    element type). *)

val load_from_file : ?integrity:'a integrity -> string -> 'a t
(** Inverse of {!save_to_file}. The caller is responsible for the
    element type matching what was saved (as with any [Marshal] use)
    and — because closures cannot be marshalled — for passing the
    same integrity envelope the machine was created with, if any.
    The loaded machine has plain in-memory backends and an all-healthy
    health cache — fault schedules, traces and disk death are run-time
    configuration, not persisted state. *)
