(** The parallel disk model machine (Vitter–Shriver).

    A machine has [disks] = D storage devices, each an array of
    [blocks_per_disk] blocks holding [block_size] = B items of type
    ['a]. One parallel I/O transfers at most one block per disk
    (independent-disks model) or at most D blocks in total (parallel
    disk *head* model, Aggarwal–Vitter, used by Section 5's striping
    discussion). Costs are charged to a {!Stats.t}.

    A request touching two blocks on the same disk in the
    independent-disks model is legal but costs two rounds; the
    simulator schedules the request into the fewest rounds possible and
    charges that many. Duplicate block addresses within one request are
    coalesced.

    Blocks are exposed as ['a option array] copies: [None] marks an
    empty slot. Mutating a returned block does not change the disk; all
    updates go through {!write}, so every byte that reaches a disk is
    counted. [peek] and [poke] bypass accounting and exist for tests
    and construction-time bulk loading only — production code paths
    never use them. *)

type model =
  | Independent_disks  (** one block per disk per round (the PDM) *)
  | Parallel_heads     (** any D blocks per round (disk head model) *)

type 'a t

type addr = { disk : int; block : int }
(** Address of one block. *)

val create :
  ?model:model ->
  ?stats:Stats.t ->
  disks:int ->
  block_size:int ->
  blocks_per_disk:int ->
  unit ->
  'a t
(** Fresh machine with all slots empty. Defaults: [model =
    Independent_disks], a private stats object. *)

val disks : 'a t -> int
val block_size : 'a t -> int
val blocks_per_disk : 'a t -> int
val model : 'a t -> model
val stats : 'a t -> Stats.t

val read : 'a t -> addr list -> (addr * 'a option array) list
(** [read t addrs] fetches the requested blocks, charging the minimal
    number of parallel read rounds. Unwritten blocks read as all-empty.
    The result lists each distinct requested address exactly once, in
    unspecified order. *)

val read_one : 'a t -> addr -> 'a option array
(** Read a single block: exactly one parallel I/O. *)

val write : 'a t -> (addr * 'a option array) list -> unit
(** [write t blocks] stores the given blocks, charging the minimal
    number of parallel write rounds. Each array must have length
    [block_size]; duplicate addresses are an error. *)

val write_one : 'a t -> addr -> 'a option array -> unit

val rounds_for : 'a t -> addr list -> int
(** Number of parallel I/Os {!read} would charge for these addresses
    (after coalescing duplicates), without performing the access. *)

val peek : 'a t -> addr -> 'a option array
(** Uncounted read — tests and invariant checks only. *)

val poke : 'a t -> addr -> 'a option array -> unit
(** Uncounted write — tests and bulk initialisation only. *)

val allocated_blocks : 'a t -> int
(** Number of blocks that have ever been written (space usage). *)

val capacity_items : 'a t -> int
(** D × blocks_per_disk × B. *)

val iter_allocated : 'a t -> (addr -> 'a option array -> unit) -> unit
(** Uncounted iteration over written blocks (live arrays, do not
    mutate) — used by verification code and rebuild bulk readers that
    account for their I/O separately. *)

val save_to_file : 'a t -> string -> unit
(** Persist the machine (geometry + every block) to a file with
    [Marshal]. I/O counters are reset on load; the usual [Marshal]
    caveats apply (same program version, matching element type). *)

val load_from_file : string -> 'a t
(** Inverse of {!save_to_file}. The caller is responsible for the
    element type matching what was saved (as with any [Marshal]
    use). *)
