(** The parallel disk model machine (Vitter–Shriver).

    A machine has [disks] = D storage devices, each an array of
    [blocks_per_disk] blocks holding [block_size] = B items of type
    ['a]. One parallel I/O transfers at most one block per disk
    (independent-disks model) or at most D blocks in total (parallel
    disk *head* model, Aggarwal–Vitter, used by Section 5's striping
    discussion). Costs are charged to a {!Stats.t}.

    A request touching two blocks on the same disk in the
    independent-disks model is legal but costs two rounds; the
    simulator schedules the request into the fewest rounds possible and
    charges that many. Duplicate block addresses within one request are
    coalesced.

    Each disk is a first-class {!Backend.t}. The default is the
    original in-memory array; passing [?faults] wraps every disk in a
    deterministic fault schedule ({!Fault}), and passing or attaching
    [?trace] records every parallel round into a {!Trace.t} ring
    buffer. Under faults (or custom backends, or tracing) requests run
    on a round-by-round scheduler: a transiently failed block read is
    re-issued in a later round and a straggling disk's transfers
    occupy k rounds each, so the charged parallel I/Os honestly
    include retries and slow hardware — the structures above the
    {!read}/{!write} API survive unchanged and simply cost more.
    Reads from a permanently failed disk raise {!Backend.Disk_failed};
    a block that keeps failing past the retry budget raises
    {!Backend.Retries_exhausted}. Without faults, custom backends or
    tracing, requests take the original closed-form fast path and
    charge bit-identical costs to the pre-backend simulator.

    Blocks are exposed as ['a option array] copies: [None] marks an
    empty slot. Mutating a returned block does not change the disk; all
    updates go through {!write}, so every byte that reaches a disk is
    counted. [peek] and [poke] bypass accounting and fault injection
    and exist for tests and construction-time bulk loading only —
    production code paths never use them. *)

type model =
  | Independent_disks  (** one block per disk per round (the PDM) *)
  | Parallel_heads     (** any D blocks per round (disk head model) *)

type 'a t

type addr = { disk : int; block : int }
(** Address of one block. *)

val create :
  ?model:model ->
  ?stats:Stats.t ->
  ?trace:Trace.t ->
  ?faults:Fault.spec ->
  ?backends:(int -> 'a Backend.t) ->
  disks:int ->
  block_size:int ->
  blocks_per_disk:int ->
  unit ->
  'a t
(** Fresh machine with all slots empty. Defaults: [model =
    Independent_disks], a private stats object, no tracing, no
    faults, in-memory backends. [backends] supplies a custom backend
    per disk (capacity and disk index must match the geometry);
    [faults] wraps whatever backend each disk has. *)

val disks : 'a t -> int
val block_size : 'a t -> int
val blocks_per_disk : 'a t -> int
val model : 'a t -> model
val stats : 'a t -> Stats.t

val trace : 'a t -> Trace.t option

val set_trace : 'a t -> Trace.t option -> unit
(** Attach or detach a round trace at run time. *)

val faults : 'a t -> Fault.spec option

val backend : 'a t -> int -> 'a Backend.t
(** The backend serving one disk (after fault wrapping). *)

val rounds_total : 'a t -> int
(** Parallel rounds executed by this machine since creation — the
    global round ids appearing in trace events. *)

val read : 'a t -> addr list -> (addr * 'a option array) list
(** [read t addrs] fetches the requested blocks, charging the minimal
    number of parallel read rounds (plus any rounds injected faults
    cost). Unwritten blocks read as all-empty. The result lists each
    distinct requested address exactly once, in unspecified order. *)

val read_one : 'a t -> addr -> 'a option array
(** Read a single block: exactly one parallel I/O (more under
    faults). *)

val write : 'a t -> (addr * 'a option array) list -> unit
(** [write t blocks] stores the given blocks, charging the minimal
    number of parallel write rounds. Each array must have length
    [block_size]; duplicate addresses are an error. *)

val write_one : 'a t -> addr -> 'a option array -> unit

val rounds_for : 'a t -> addr list -> int
(** Number of parallel I/Os {!read} would charge for these addresses
    (after coalescing duplicates), without performing the access. On a
    faulty machine this is the fault-free lower bound: retries and
    straggling can only add rounds. *)

val peek : 'a t -> addr -> 'a option array
(** Uncounted, fault-free read — tests and invariant checks only. *)

val poke : 'a t -> addr -> 'a option array -> unit
(** Uncounted, fault-free write — tests and bulk initialisation
    only. *)

val allocated_blocks : 'a t -> int
(** Number of blocks that have ever been written (space usage). *)

val capacity_items : 'a t -> int
(** D × blocks_per_disk × B. *)

val iter_allocated : 'a t -> (addr -> 'a option array -> unit) -> unit
(** Uncounted iteration over written blocks (live arrays, do not
    mutate) — used by verification code and rebuild bulk readers that
    account for their I/O separately. *)

val save_to_file : 'a t -> string -> unit
(** Persist the machine (geometry + every block) to a file with
    [Marshal]. I/O counters are reset on load; the usual [Marshal]
    caveats apply (same program version, matching element type). *)

val load_from_file : string -> 'a t
(** Inverse of {!save_to_file}. The caller is responsible for the
    element type matching what was saved (as with any [Marshal] use).
    The loaded machine has plain in-memory backends — fault schedules
    and traces are run-time configuration, not persisted state. *)
