type snapshot = {
  parallel_reads : int;
  parallel_writes : int;
  block_reads : int;
  block_writes : int;
  disk_reads : int array;
  disk_writes : int array;
}

type t = {
  mutable r_rounds : int;
  mutable w_rounds : int;
  mutable r_blocks : int;
  mutable w_blocks : int;
  mutable d_reads : int array;
  mutable d_writes : int array;
}

let create () =
  { r_rounds = 0; w_rounds = 0; r_blocks = 0; w_blocks = 0;
    d_reads = [||]; d_writes = [||] }

let reset t =
  t.r_rounds <- 0;
  t.w_rounds <- 0;
  t.r_blocks <- 0;
  t.w_blocks <- 0;
  Array.fill t.d_reads 0 (Array.length t.d_reads) 0;
  Array.fill t.d_writes 0 (Array.length t.d_writes) 0

(* pdm-lint: domain local — per-simulation I/O counters owned by the scheduler's domain *)
let grow a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make n 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* The per-disk arrays grow to the highest disk index seen, so one
   stats object can serve machines of different widths. *)
(* pdm-lint: domain local — per-simulation I/O counters owned by the scheduler's domain *)
let ensure t disk =
  if Array.length t.d_reads <= disk then begin
    t.d_reads <- grow t.d_reads (disk + 1);
    t.d_writes <- grow t.d_writes (disk + 1)
  end

(* pdm-lint: domain local — per-simulation I/O counters owned by the scheduler's domain *)
let add_read_round t ~blocks ~rounds =
  t.r_blocks <- t.r_blocks + blocks;
  t.r_rounds <- t.r_rounds + rounds

(* pdm-lint: domain local — per-simulation I/O counters owned by the scheduler's domain *)
let add_write_round t ~blocks ~rounds =
  t.w_blocks <- t.w_blocks + blocks;
  t.w_rounds <- t.w_rounds + rounds

(* pdm-lint: domain local — per-simulation I/O counters owned by the scheduler's domain *)
let add_disk_read t ~disk ~blocks =
  ensure t disk;
  t.d_reads.(disk) <- t.d_reads.(disk) + blocks

(* pdm-lint: domain local — per-simulation I/O counters owned by the scheduler's domain *)
let add_disk_write t ~disk ~blocks =
  ensure t disk;
  t.d_writes.(disk) <- t.d_writes.(disk) + blocks

let snapshot t =
  { parallel_reads = t.r_rounds;
    parallel_writes = t.w_rounds;
    block_reads = t.r_blocks;
    block_writes = t.w_blocks;
    disk_reads = Array.copy t.d_reads;
    disk_writes = Array.copy t.d_writes }

let map2_padded f a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      let get x = if i < Array.length x then x.(i) else 0 in
      f (get a) (get b))

let diff ~after ~before =
  { parallel_reads = after.parallel_reads - before.parallel_reads;
    parallel_writes = after.parallel_writes - before.parallel_writes;
    block_reads = after.block_reads - before.block_reads;
    block_writes = after.block_writes - before.block_writes;
    disk_reads = map2_padded ( - ) after.disk_reads before.disk_reads;
    disk_writes = map2_padded ( - ) after.disk_writes before.disk_writes }

let parallel_ios s = s.parallel_reads + s.parallel_writes

let zero =
  { parallel_reads = 0; parallel_writes = 0; block_reads = 0;
    block_writes = 0; disk_reads = [||]; disk_writes = [||] }

let add a b =
  { parallel_reads = a.parallel_reads + b.parallel_reads;
    parallel_writes = a.parallel_writes + b.parallel_writes;
    block_reads = a.block_reads + b.block_reads;
    block_writes = a.block_writes + b.block_writes;
    disk_reads = map2_padded ( + ) a.disk_reads b.disk_reads;
    disk_writes = map2_padded ( + ) a.disk_writes b.disk_writes }

let disk_totals s = map2_padded ( + ) s.disk_reads s.disk_writes

type occupancy = { max_load : int; mean_load : float }

let occupancy s =
  let totals = disk_totals s in
  let n = Array.length totals in
  if n = 0 then None
  else
    let sum = Array.fold_left ( + ) 0 totals in
    if sum = 0 then None
    else
      Some
        { max_load = Array.fold_left max 0 totals;
          mean_load = float_of_int sum /. float_of_int n }

let pp ppf s =
  Format.fprintf ppf "%d parallel I/Os (%dR + %dW rounds; %d + %d blocks)"
    (parallel_ios s) s.parallel_reads s.parallel_writes s.block_reads
    s.block_writes;
  match occupancy s with
  | None -> ()
  | Some o ->
    Format.fprintf ppf "; disk load max %d / mean %.1f" o.max_load o.mean_load

let measure t f =
  let before = snapshot t in
  let result = f () in
  let after = snapshot t in
  (result, diff ~after ~before)
