type snapshot = {
  parallel_reads : int;
  parallel_writes : int;
  block_reads : int;
  block_writes : int;
}

type t = {
  mutable r_rounds : int;
  mutable w_rounds : int;
  mutable r_blocks : int;
  mutable w_blocks : int;
}

let create () = { r_rounds = 0; w_rounds = 0; r_blocks = 0; w_blocks = 0 }

let reset t =
  t.r_rounds <- 0;
  t.w_rounds <- 0;
  t.r_blocks <- 0;
  t.w_blocks <- 0

let add_read_round t ~blocks ~rounds =
  t.r_blocks <- t.r_blocks + blocks;
  t.r_rounds <- t.r_rounds + rounds

let add_write_round t ~blocks ~rounds =
  t.w_blocks <- t.w_blocks + blocks;
  t.w_rounds <- t.w_rounds + rounds

let snapshot t =
  { parallel_reads = t.r_rounds;
    parallel_writes = t.w_rounds;
    block_reads = t.r_blocks;
    block_writes = t.w_blocks }

let diff ~after ~before =
  { parallel_reads = after.parallel_reads - before.parallel_reads;
    parallel_writes = after.parallel_writes - before.parallel_writes;
    block_reads = after.block_reads - before.block_reads;
    block_writes = after.block_writes - before.block_writes }

let parallel_ios s = s.parallel_reads + s.parallel_writes

let zero =
  { parallel_reads = 0; parallel_writes = 0; block_reads = 0; block_writes = 0 }

let add a b =
  { parallel_reads = a.parallel_reads + b.parallel_reads;
    parallel_writes = a.parallel_writes + b.parallel_writes;
    block_reads = a.block_reads + b.block_reads;
    block_writes = a.block_writes + b.block_writes }

let pp ppf s =
  Format.fprintf ppf "%d parallel I/Os (%dR + %dW rounds; %d + %d blocks)"
    (parallel_ios s) s.parallel_reads s.parallel_writes s.block_reads
    s.block_writes

let measure t f =
  let before = snapshot t in
  let result = f () in
  let after = snapshot t in
  (result, diff ~after ~before)
