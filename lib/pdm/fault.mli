(** Deterministic seeded fault injection for disk backends.

    A {!spec} describes, per disk, four failure modes taken from real
    storage arrays:

    - {e transient read errors}: each read attempt of a block fails
      independently with a fixed probability; the scheduler re-issues
      the block in a later round, up to the retry budget;
    - {e silent corruption}: a read attempt "succeeds" but delivers a
      mangled block — undetectable unless the machine carries an
      integrity envelope ({!Pdm.create}[ ?integrity]), in which case
      the checksum failure is retried and, on a replicated machine,
      failed over to another replica;
    - {e permanent failure}: every counted access raises
      {!Backend.Disk_failed};
    - {e straggling}: each block transfer occupies k rounds instead
      of 1, so the disk drags every request it participates in.

    The schedule is a pure function of [(seed, disk, block, attempt)]
    via the SplitMix64 keyed hash, so a run is reproducible bit for
    bit and the {e same} block read fails the {e same} way on every
    replay — no hidden RNG state. *)

type disk_fault = {
  transient_read_prob : float;  (** Per-attempt failure probability. *)
  corrupt_read_prob : float;  (** Per-attempt silent-mangle probability. *)
  fail : bool;  (** Permanently failed disk. *)
  straggle : int;  (** Rounds per transfer (>= 1; 1 = healthy). *)
}

type spec = {
  seed : int;
  max_retries : int;  (** Retry budget per block read. *)
  disks : (int * disk_fault) list;  (** Overrides; absent = healthy. *)
}

val healthy : disk_fault

val spec :
  ?seed:int ->
  ?max_retries:int ->
  ?transient:(int * float) list ->
  ?corrupt:(int * float) list ->
  ?fail:int list ->
  ?stragglers:(int * int) list ->
  unit ->
  spec
(** Build a spec from per-disk lists: [transient] pairs a disk with a
    failure probability, [corrupt] with a silent-corruption
    probability (1.0 allowed: {e every} read of that disk is mangled),
    [stragglers] with a round multiplier, [fail] lists dead disks.
    Defaults: [seed = 0], [max_retries = 8], all disks healthy. *)

val disk_fault : spec -> int -> disk_fault
(** The (possibly healthy) fault description of one disk. *)

val transient_hit : spec -> disk:int -> block:int -> attempt:int -> bool
(** Whether this read attempt fails under the schedule — deterministic
    in all four arguments. *)

val corrupt_hit : spec -> disk:int -> block:int -> attempt:int -> bool
(** Whether this read attempt silently mangles its data —
    deterministic, independently salted from {!transient_hit}. *)

val wrap : spec -> 'a Backend.t -> 'a Backend.t
(** Layer the schedule over a backend: reads consult
    {!transient_hit} and {!corrupt_hit}, a failed disk answers [Lost]
    (and raises on writes), a straggler multiplies [cost].
    [peek]/[poke]/[dump] pass through unharmed — injected corruption
    lives on the wire, never on the stored data. *)

val is_noop : spec -> bool
(** True when the spec injects nothing (all disks healthy). *)
