(** Name-keyed registry of storage-backend factories.

    Decouples the machine layer from concrete real-I/O backends:
    providers (the [pdm_io] library) register an [int]
    {!Backend.factory} under a kind name at module-init time, and front
    ends resolve a ["--backend <kind>"] string here. Machines are [int]
    machines in practice, so the registry is monomorphic; polymorphic
    callers pass a factory to {!Pdm.create} directly. *)

val register :
  kind:string -> doc:string -> (unit -> int Backend.factory) -> unit
(** [register ~kind ~doc make] installs (or replaces) a factory
    provider under [kind] (case-insensitive). [make] runs once per
    {!resolve}, so each resolution can own fresh state (e.g. a fresh
    scratch directory). Registering ["mem"] is an error — it is built
    in and always resolves. *)

val resolve : string -> (int Backend.factory, string) result
(** Look up a kind name; the [Error] case lists known kinds. *)

val kinds : unit -> (string * string) list
(** Registered [(kind, doc)] pairs, sorted, ["mem"] included. *)
