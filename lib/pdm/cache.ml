type 'a entry = { mutable data : 'a option array; mutable stamp : int }

type 'a t = {
  pdm : 'a Pdm.t;
  capacity : int;
  table : (Pdm.addr, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create pdm ~capacity_blocks =
  if capacity_blocks < 1 then invalid_arg "Cache.create: capacity >= 1";
  let t =
    { pdm; capacity = capacity_blocks; table = Hashtbl.create 64; clock = 0;
      hits = 0; misses = 0 }
  in
  (* Coherence with writers that bypass this cache (journal replay,
     scrub repair, another handle on the same machine): any write to
     the machine drops our copy. Our own write-through re-inserts the
     fresh data after the machine write returns, so it stays cached. *)
  Pdm.add_write_listener pdm (fun addr -> Hashtbl.remove t.table addr);
  t

let machine t = t.pdm
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let resident t = Hashtbl.length t.table

(* pdm-lint: domain local — LRU stamps on the engine-owned cache, touched only from its round loop *)
let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

(* pdm-lint: domain local — cache table owned by one engine; eviction runs in its round loop *)
let evict_to_capacity t =
  while Hashtbl.length t.table > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun addr e ->
        match !victim with
        | Some (_, s) when s <= e.stamp -> ()
        | Some _ | None -> victim := Some (addr, e.stamp))
      t.table;
    match !victim with
    | Some (addr, _) -> Hashtbl.remove t.table addr
    | None -> ()
  done

(* pdm-lint: domain local — cache table owned by one engine; inserts run in its round loop *)
let insert t addr data =
  let e = { data; stamp = 0 } in
  touch t e;
  Hashtbl.replace t.table addr e;
  evict_to_capacity t

let read t addrs =
  let addrs = List.sort_uniq compare addrs in
  (* Serve hits first (touching them), then fetch the misses in one
     machine request. A cache smaller than the batch may evict some
     just-fetched blocks immediately; the results are taken from the
     fetch itself, so correctness does not depend on residency. *)
  let hits, missing =
    List.partition (fun a -> Hashtbl.mem t.table a) addrs
  in
  t.hits <- t.hits + List.length hits;
  t.misses <- t.misses + List.length missing;
  let served =
    List.map
      (fun addr ->
        let e = Hashtbl.find t.table addr in
        touch t e;
        (addr, Array.copy e.data))
      hits
  in
  let fetched = if missing = [] then [] else Pdm.read t.pdm missing in
  List.iter (fun (addr, data) -> insert t addr (Array.copy data)) fetched;
  served @ fetched

let read_one t addr =
  match read t [ addr ] with
  | [ (_, data) ] -> data
  | _ ->
    (* pdm-lint: allow R3 — unreachable: [read] answers each distinct
       requested address exactly once (hit or fetched), so a singleton
       request always yields a singleton. *)
    assert false

(* pdm-lint: domain local — hit/miss counters on the engine-owned cache *)
let find_cached t addr =
  match Hashtbl.find_opt t.table addr with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Some (Array.copy e.data)
  | None ->
    t.misses <- t.misses + 1;
    None

let note_fetched t addr data = insert t addr (Array.copy data)

let write t blocks =
  Pdm.write t.pdm blocks;
  List.iter
    (fun (addr, data) ->
      match Hashtbl.find_opt t.table addr with
      | Some e ->
        e.data <- Array.copy data;
        touch t e
      | None -> insert t addr (Array.copy data))
    blocks

let flush t = Hashtbl.reset t.table
