module Imath = Pdm_util.Imath

type model = Independent_disks | Parallel_heads

type addr = { disk : int; block : int }

type 'a t = {
  disks : int;
  block_size : int;
  blocks_per_disk : int;
  model : model;
  stats : Stats.t;
  backends : 'a Backend.t array;
  fault_spec : Fault.spec option;
  custom_backends : bool;
  mutable trace : Trace.t option;
  mutable rounds_done : int;
  mutable allocated : int;
}

let create ?(model = Independent_disks) ?stats ?trace ?faults ?backends ~disks
    ~block_size ~blocks_per_disk () =
  if disks < 1 then invalid_arg "Pdm.create: disks must be >= 1";
  if block_size < 1 then invalid_arg "Pdm.create: block_size must be >= 1";
  if blocks_per_disk < 1 then invalid_arg "Pdm.create: blocks_per_disk >= 1";
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let base d =
    match backends with
    | None -> Backend.memory ~disk:d ~blocks:blocks_per_disk
    | Some f ->
      let b = f d in
      if b.Backend.blocks <> blocks_per_disk then
        invalid_arg "Pdm.create: backend capacity <> blocks_per_disk";
      if b.Backend.disk <> d then
        invalid_arg "Pdm.create: backend disk index mismatch";
      b
  in
  let wrap b = match faults with None -> b | Some s -> Fault.wrap s b in
  { disks; block_size; blocks_per_disk; model; stats;
    backends = Array.init disks (fun d -> wrap (base d));
    fault_spec = faults;
    custom_backends = backends <> None;
    trace;
    rounds_done = 0;
    allocated = 0 }

let disks t = t.disks
let block_size t = t.block_size
let blocks_per_disk t = t.blocks_per_disk
let model t = t.model
let stats t = t.stats
let trace t = t.trace
let set_trace t tr = t.trace <- tr
let faults t = t.fault_spec
let rounds_total t = t.rounds_done
let backend t d = t.backends.(d)

let check_addr t { disk; block } =
  if disk < 0 || disk >= t.disks then invalid_arg "Pdm: disk out of range";
  if block < 0 || block >= t.blocks_per_disk then
    invalid_arg "Pdm: block out of range"

let dedup addrs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    addrs

(* Minimal number of rounds to transfer the given distinct blocks on
   healthy disks. *)
let rounds_of_distinct t addrs =
  match addrs with
  | [] -> 0
  | _ ->
    (match t.model with
     | Parallel_heads -> Imath.cdiv (List.length addrs) t.disks
     | Independent_disks ->
       let per_disk = Array.make t.disks 0 in
       List.iter (fun a -> per_disk.(a.disk) <- per_disk.(a.disk) + 1) addrs;
       Array.fold_left max 0 per_disk)

let rounds_for t addrs =
  List.iter (check_addr t) addrs;
  rounds_of_distinct t (dedup addrs)

let block_copy t = function
  | None -> Array.make t.block_size None
  | Some slots -> Array.copy slots

(* A request runs on the slow, round-by-round scheduler whenever its
   rounds cannot be predicted by the closed form: fault injection may
   re-issue blocks, stragglers stretch transfers, custom backends may
   do either, and tracing needs to see the actual rounds. *)
let scheduled t =
  t.trace <> None || t.fault_spec <> None || t.custom_backends

let add_disk_blocks t ~op per_disk =
  Array.iteri
    (fun d n ->
      if n > 0 then
        match op with
        | Trace.Read -> Stats.add_disk_read t.stats ~disk:d ~blocks:n
        | Trace.Write -> Stats.add_disk_write t.stats ~disk:d ~blocks:n)
    per_disk

(* Round-by-round execution. [perform a ~attempt] completes one block
   transfer, answering [`Done] or [`Retry] (transient fault: re-queue
   for a later round); it raises on a lost disk. Each disk is a channel
   draining its own queue in the independent-disks model; the head
   model has D interchangeable channels over one queue. A transfer
   occupies [cost] rounds of its channel, so a straggling or retried
   block honestly delays everything queued behind it. Returns the
   number of rounds the request took. *)
let schedule t ~op ~addrs ~perform =
  let queues =
    match t.model with
    | Independent_disks ->
      let qs = Array.init t.disks (fun _ -> Queue.create ()) in
      List.iter (fun a -> Queue.add a qs.(a.disk)) addrs;
      qs
    | Parallel_heads ->
      let q = Queue.create () in
      List.iter (fun a -> Queue.add a q) addrs;
      [| q |]
  in
  let queue_of c =
    match t.model with
    | Independent_disks -> queues.(c)
    | Parallel_heads -> queues.(0)
  in
  let attempts = Hashtbl.create 16 in
  let attempt_of a = Option.value (Hashtbl.find_opt attempts a) ~default:0 in
  let current = Array.make t.disks None in
  let busy () = Array.exists Option.is_some current in
  let queued () = Array.exists (fun q -> not (Queue.is_empty q)) queues in
  let rounds_used = ref 0 in
  while busy () || queued () do
    let round_id = t.rounds_done + 1 in
    let per_disk = Array.make t.disks 0 in
    let retries = ref 0 in
    let degraded = ref false in
    for c = 0 to t.disks - 1 do
      (match current.(c) with
       | Some _ -> ()
       | None ->
         let q = queue_of c in
         if not (Queue.is_empty q) then begin
           let a = Queue.pop q in
           current.(c) <- Some (a, t.backends.(a.disk).Backend.cost)
         end);
      match current.(c) with
      | None -> ()
      | Some (a, remaining) ->
        let bk = t.backends.(a.disk) in
        if bk.Backend.cost > 1 then degraded := true;
        let remaining = remaining - 1 in
        if remaining > 0 then current.(c) <- Some (a, remaining)
        else begin
          current.(c) <- None;
          match perform a ~attempt:(attempt_of a) with
          | `Done -> per_disk.(a.disk) <- per_disk.(a.disk) + 1
          | `Retry ->
            incr retries;
            degraded := true;
            let next = attempt_of a + 1 in
            if next > bk.Backend.max_retries then
              raise
                (Backend.Retries_exhausted
                   { disk = a.disk; block = a.block; attempts = next });
            Hashtbl.replace attempts a next;
            Queue.add a (queue_of c)
        end
    done;
    t.rounds_done <- t.rounds_done + 1;
    incr rounds_used;
    (match t.trace with
     | None -> ()
     | Some tr ->
       Trace.record tr
         { Trace.round = round_id; op; per_disk; retries = !retries;
           degraded = !degraded });
    add_disk_blocks t ~op per_disk
  done;
  !rounds_used

let read t addrs =
  List.iter (check_addr t) addrs;
  let addrs = dedup addrs in
  if scheduled t then begin
    let results = ref [] in
    let perform a ~attempt =
      match t.backends.(a.disk).Backend.read ~attempt a.block with
      | Backend.Data d ->
        results := (a, block_copy t d) :: !results;
        `Done
      | Backend.Transient -> `Retry
      | Backend.Lost -> raise (Backend.Disk_failed a.disk)
    in
    let rounds = schedule t ~op:Trace.Read ~addrs ~perform in
    Stats.add_read_round t.stats ~blocks:(List.length !results) ~rounds;
    !results
  end
  else begin
    let rounds = rounds_of_distinct t addrs in
    Stats.add_read_round t.stats ~blocks:(List.length addrs) ~rounds;
    t.rounds_done <- t.rounds_done + rounds;
    List.map
      (fun a ->
        Stats.add_disk_read t.stats ~disk:a.disk ~blocks:1;
        match t.backends.(a.disk).Backend.read ~attempt:0 a.block with
        | Backend.Data d -> (a, block_copy t d)
        | Backend.Transient | Backend.Lost ->
          (* the default backend is fault-free *)
          assert false)
      addrs
  end

let read_one t a =
  match read t [ a ] with
  | [ (_, slots) ] -> slots
  | _ -> assert false

let store_block t a slots =
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.write: block has wrong length";
  let bk = t.backends.(a.disk) in
  if bk.Backend.peek a.block = None then t.allocated <- t.allocated + 1;
  bk.Backend.write a.block (Array.copy slots)

let write t blocks =
  List.iter (fun (a, _) -> check_addr t a) blocks;
  let addrs = List.map fst blocks in
  if List.length (dedup addrs) <> List.length addrs then
    invalid_arg "Pdm.write: duplicate address in one request";
  if scheduled t then begin
    let contents = Hashtbl.create 16 in
    List.iter (fun (a, slots) -> Hashtbl.replace contents a slots) blocks;
    let perform a ~attempt:_ =
      store_block t a (Hashtbl.find contents a);
      `Done
    in
    let rounds = schedule t ~op:Trace.Write ~addrs ~perform in
    Stats.add_write_round t.stats ~blocks:(List.length blocks) ~rounds
  end
  else begin
    let rounds = rounds_of_distinct t addrs in
    Stats.add_write_round t.stats ~blocks:(List.length blocks) ~rounds;
    t.rounds_done <- t.rounds_done + rounds;
    List.iter
      (fun (a, slots) ->
        Stats.add_disk_write t.stats ~disk:a.disk ~blocks:1;
        store_block t a slots)
      blocks
  end

let write_one t a slots = write t [ (a, slots) ]

let peek t a =
  check_addr t a;
  block_copy t (t.backends.(a.disk).Backend.peek a.block)

let poke t a slots =
  check_addr t a;
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.poke: block has wrong length";
  let bk = t.backends.(a.disk) in
  if bk.Backend.peek a.block = None then t.allocated <- t.allocated + 1;
  bk.Backend.poke a.block (Some (Array.copy slots))

let allocated_blocks t = t.allocated

let capacity_items t = t.disks * t.blocks_per_disk * t.block_size

let iter_allocated t f =
  for d = 0 to t.disks - 1 do
    let bk = t.backends.(d) in
    for b = 0 to t.blocks_per_disk - 1 do
      match bk.Backend.peek b with
      | None -> ()
      | Some slots -> f { disk = d; block = b } slots
    done
  done

(* Persistence: geometry and store only; counters restart at zero and
   the reloaded machine always has plain in-memory backends (fault
   schedules and traces are run-time configuration, not state). *)
type 'a snapshot_on_disk = {
  s_disks : int;
  s_block_size : int;
  s_blocks_per_disk : int;
  s_model : model;
  s_store : 'a option array option array array;
  s_allocated : int;
}

let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc
        { s_disks = t.disks; s_block_size = t.block_size;
          s_blocks_per_disk = t.blocks_per_disk; s_model = t.model;
          s_store = Array.map (fun b -> b.Backend.dump ()) t.backends;
          s_allocated = t.allocated }
        [])

let load_from_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let s : 'a snapshot_on_disk = Marshal.from_channel ic in
      { disks = s.s_disks; block_size = s.s_block_size;
        blocks_per_disk = s.s_blocks_per_disk; model = s.s_model;
        stats = Stats.create ();
        backends =
          Array.mapi (fun d store -> Backend.of_store ~disk:d store) s.s_store;
        fault_spec = None;
        custom_backends = false;
        trace = None;
        rounds_done = 0;
        allocated = s.s_allocated })
