module Imath = Pdm_util.Imath

type model = Independent_disks | Parallel_heads

type addr = { disk : int; block : int }

type 'a integrity = {
  tag : string;
  overhead : int;
  seal : 'a option array -> 'a option array;
  check : 'a option array -> 'a option array option;
}

type 'a t = {
  disks : int;  (* logical *)
  block_size : int;  (* payload cells per logical block *)
  blocks_per_disk : int;  (* logical *)
  replicas : int;
  spares : int;
  model : model;
  stats : Stats.t;
  integrity : 'a integrity option;
  backends : 'a Backend.t array;  (* length disks + spares *)
  down : bool array;  (* health cache, learned from Lost answers *)
  remap : (addr * int, addr) Hashtbl.t;  (* (logical, replica) moved *)
  spare_next : int array;  (* next free block on each spare disk *)
  fault_spec : Fault.spec option;
  custom_backends : bool;
  mutable killed : bool;  (* some disk was killed at run time *)
  mutable trace : Trace.t option;
  mutable rounds_done : int;
  mutable allocated : int;
  mutable write_listeners : (addr -> unit) list;
}

let physical_disks_of ~disks ~spares = disks + spares
let physical_blocks_of ~replicas ~blocks_per_disk = replicas * blocks_per_disk

let create ?(model = Independent_disks) ?stats ?trace ?faults ?backends
    ?factory ?(replicas = 1) ?(spares = 0) ?integrity ~disks ~block_size
    ~blocks_per_disk () =
  if disks < 1 then invalid_arg "Pdm.create: disks must be >= 1";
  if block_size < 1 then invalid_arg "Pdm.create: block_size must be >= 1";
  if blocks_per_disk < 1 then invalid_arg "Pdm.create: blocks_per_disk >= 1";
  if replicas < 1 then invalid_arg "Pdm.create: replicas must be >= 1";
  if replicas > disks then
    invalid_arg "Pdm.create: replicas must be <= disks (distinct disks)";
  if spares < 0 then invalid_arg "Pdm.create: spares must be >= 0";
  (match integrity with
   | Some i when i.overhead < 0 ->
     invalid_arg "Pdm.create: integrity overhead must be >= 0"
   | _ -> ());
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let phys_blocks = physical_blocks_of ~replicas ~blocks_per_disk in
  let phys_disks = physical_disks_of ~disks ~spares in
  (* A factory is the geometry-blind form of [?backends]: we hand it
     the physical blocks-per-disk and the sealed slot width (payload
     plus integrity envelope) and it answers with per-disk constructors
     — or [None], meaning "use the default memory disks". An explicit
     [?backends] wins when both are given. *)
  let backends =
    match backends, factory with
    | Some _, _ | None, None -> backends
    | None, Some f ->
      let slots =
        block_size
        + (match integrity with Some i -> i.overhead | None -> 0)
      in
      f ~blocks:phys_blocks ~slots
  in
  let base d =
    match backends with
    | None -> Backend.memory ~disk:d ~blocks:phys_blocks
    | Some f ->
      let b = f d in
      if b.Backend.blocks <> phys_blocks then
        invalid_arg "Pdm.create: backend capacity <> physical blocks per disk";
      if b.Backend.disk <> d then
        invalid_arg "Pdm.create: backend disk index mismatch";
      b
  in
  let wrap b = match faults with None -> b | Some s -> Fault.wrap s b in
  { disks; block_size; blocks_per_disk; replicas; spares; model; stats;
    integrity;
    backends = Array.init phys_disks (fun d -> wrap (base d));
    down = Array.make phys_disks false;
    remap = Hashtbl.create 16;
    spare_next = Array.make spares 0;
    fault_spec = faults;
    custom_backends = backends <> None;
    killed = false;
    trace;
    rounds_done = 0;
    allocated = 0;
    write_listeners = [] }

let disks t = t.disks
let block_size t = t.block_size
let blocks_per_disk t = t.blocks_per_disk
let replicas t = t.replicas
let spares t = t.spares
let physical_disks t = t.disks + t.spares
let model t = t.model
let stats t = t.stats
let trace t = t.trace
let set_trace t tr = t.trace <- tr
let faults t = t.fault_spec
let integrity t = t.integrity
let rounds_total t = t.rounds_done
let backend t d = t.backends.(d)
let disk_down t d = t.down.(d)
let remapped_replicas t = Hashtbl.length t.remap

let add_write_listener t f = t.write_listeners <- t.write_listeners @ [ f ]

let set_sanitize = Sanitize.set
let sanitize_enabled = Sanitize.active

(* Tell every listener the logical block's stored bits are about to
   change (or just changed): caches drop their copy. Listeners must
   not touch the machine. *)
let notify_write t a =
  match t.write_listeners with
  | [] -> ()
  | fs -> List.iter (fun f -> f a) fs

(* Replica j of logical block {d, b} lives on disk (d + j) mod D in
   that disk's j-th block region — r distinct disks per block, and the
   identity map for j = 0, so an unreplicated machine has the exact
   physical layout of the seed simulator. Repair may move a replica
   elsewhere (a spare disk); the remap table records those moves. *)
let phys t a j =
  match Hashtbl.find_opt t.remap (a, j) with
  | Some p -> p
  | None ->
    if j = 0 then a
    else
      { disk = (a.disk + j) mod t.disks;
        block = (j * t.blocks_per_disk) + a.block }

let check_addr t { disk; block } =
  if disk < 0 || disk >= t.disks then invalid_arg "Pdm: disk out of range";
  if block < 0 || block >= t.blocks_per_disk then
    invalid_arg "Pdm: block out of range"

let replica_disks t a =
  check_addr t a;
  List.init t.replicas (fun j -> (phys t a j).disk)

let dedup addrs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    addrs

(* Minimal number of rounds to transfer the given distinct blocks on
   healthy disks. *)
let rounds_of_distinct t addrs =
  match addrs with
  | [] -> 0
  | _ ->
    (match t.model with
     | Parallel_heads -> Imath.cdiv (List.length addrs) t.disks
     | Independent_disks ->
       let per_disk = Array.make t.disks 0 in
       List.iter (fun a -> per_disk.(a.disk) <- per_disk.(a.disk) + 1) addrs;
       Array.fold_left max 0 per_disk)

let rounds_for t addrs =
  List.iter (check_addr t) addrs;
  rounds_of_distinct t (dedup addrs)

let block_copy t = function
  | None -> Array.make t.block_size None
  | Some slots -> Array.copy slots

(* A request runs on the slow, round-by-round scheduler whenever its
   rounds cannot be predicted by the closed form: fault injection may
   re-issue blocks, stragglers stretch transfers, custom backends may
   do either, tracing needs to see the actual rounds, and replication,
   spares, integrity checking or a killed disk all need per-block
   failure handling. *)
let scheduled t =
  t.trace <> None || t.fault_spec <> None || t.custom_backends || t.killed
  || t.replicas > 1 || t.spares > 0
  || Option.is_some t.integrity

let add_disk_blocks t ~op per_disk =
  Array.iteri
    (fun d n ->
      if n > 0 then
        match op with
        | Trace.Read -> Stats.add_disk_read t.stats ~disk:d ~blocks:n
        | Trace.Write -> Stats.add_disk_write t.stats ~disk:d ~blocks:n)
    per_disk

(* Why a block transfer finally failed. *)
type fail_reason = R_lost | R_corrupt | R_flaky

let raise_failure t p reason attempts =
  let round = t.rounds_done in
  match reason with
  | R_lost ->
    raise (Backend.Disk_failed { disk = p.disk; block = p.block; round })
  | R_corrupt ->
    raise (Backend.Corrupt_block { disk = p.disk; block = p.block; round })
  | R_flaky ->
    raise
      (Backend.Retries_exhausted
         { disk = p.disk; block = p.block; attempts; round })

(* Round-by-round execution over the physical disks. [perform a
   ~attempt] completes one block transfer, answering [`Done], [`Retry
   reason] (re-queue for a later round, up to the budget) or [`Fail
   reason] (the block cannot be served here; the caller's [on_fail]
   decides whether a replica takes over or the failure is terminal).
   Each disk is a channel draining its own queue in the
   independent-disks model; the head model has interchangeable
   channels over one queue. A transfer occupies [cost] rounds of its
   channel, so a straggling or retried block honestly delays
   everything queued behind it. Returns the number of rounds used. *)
(* Sanitizer verdict on one finished round: every perform call must
   have been accounted as delivered, retried or failed; no disk may
   have been touched twice (independent-disks model); the round cannot
   move more blocks than it has channels; and no disk may be charged
   for more blocks than were actually transferred from it. *)
let sanitize_round t ~round_id ~channels ~touched ~performs ~accounted
    ~per_disk =
  (match t.model with
   | Independent_disks ->
     Array.iteri
       (fun d n ->
         if n > 1 then
           Sanitize.fail ~check:"one-block-per-disk-per-round" ~round:round_id
             (Printf.sprintf "disk %d touched %d blocks in one round" d n))
       touched
   | Parallel_heads -> ());
  let total = Array.fold_left ( + ) 0 touched in
  if total > channels then
    Sanitize.fail ~check:"round-width" ~round:round_id
      (Printf.sprintf "%d blocks moved in one round on %d channels" total
         channels);
  if performs <> accounted then
    Sanitize.fail ~check:"charge-accounting" ~round:round_id
      (Printf.sprintf "%d transfers performed but %d accounted" performs
         accounted);
  Array.iteri
    (fun d n ->
      if n > touched.(d) then
        Sanitize.fail ~check:"phantom-charge" ~round:round_id
          (Printf.sprintf "disk %d charged %d blocks but touched %d" d n
             touched.(d)))
    per_disk

(* pdm-lint: domain local — scheduler round ledger and per-disk queues; one scheduler per simulation, never shared *)
let schedule t ~op ~addrs ~perform ~on_fail =
  let channels = physical_disks t in
  let queues =
    match t.model with
    | Independent_disks ->
      let qs = Array.init channels (fun _ -> Queue.create ()) in
      List.iter (fun a -> Queue.add a qs.(a.disk)) addrs;
      qs
    | Parallel_heads ->
      let q = Queue.create () in
      List.iter (fun a -> Queue.add a q) addrs;
      [| q |]
  in
  let queue_of c =
    match t.model with
    | Independent_disks -> queues.(c)
    | Parallel_heads -> queues.(0)
  in
  let attempts = Hashtbl.create 16 in
  let attempt_of a = Option.value (Hashtbl.find_opt attempts a) ~default:0 in
  let current = Array.make channels None in
  let busy () = Array.exists Option.is_some current in
  let queued () = Array.exists (fun q -> not (Queue.is_empty q)) queues in
  let rounds_used = ref 0 in
  let sanitizing = Sanitize.active () in
  while busy () || queued () do
    let round_id = t.rounds_done + 1 in
    let per_disk = Array.make channels 0 in
    let retries = ref 0 in
    let degraded = ref false in
    let touched = if sanitizing then Array.make channels 0 else [||] in
    let performs = ref 0 and accounted = ref 0 in
    for c = 0 to channels - 1 do
      (match current.(c) with
       | Some _ -> ()
       | None ->
         let q = queue_of c in
         if not (Queue.is_empty q) then begin
           let a = Queue.pop q in
           let cost = t.backends.(a.disk).Backend.cost in
           if sanitizing && cost < 1 then
             Sanitize.fail ~check:"backend-cost" ~round:round_id
               (Printf.sprintf
                  "disk %d advertises cost %d; a transfer takes >= 1 round"
                  a.disk cost);
           current.(c) <- Some (a, cost)
         end);
      match current.(c) with
      | None -> ()
      | Some (a, remaining) ->
        let bk = t.backends.(a.disk) in
        if bk.Backend.cost > 1 then degraded := true;
        let remaining = remaining - 1 in
        if remaining > 0 then current.(c) <- Some (a, remaining)
        else begin
          current.(c) <- None;
          if sanitizing then begin
            incr performs;
            touched.(a.disk) <- touched.(a.disk) + 1
          end;
          match perform a ~attempt:(attempt_of a) with
          | `Done ->
            incr accounted;
            per_disk.(a.disk) <- per_disk.(a.disk) + 1
          | `Fail reason ->
            incr accounted;
            degraded := true;
            on_fail a reason ~attempts:(attempt_of a)
          | `Retry reason ->
            incr accounted;
            incr retries;
            degraded := true;
            let next = attempt_of a + 1 in
            if next > bk.Backend.max_retries then
              on_fail a reason ~attempts:next
            else begin
              Hashtbl.replace attempts a next;
              Queue.add a (queue_of c)
            end
        end
    done;
    if sanitizing then
      sanitize_round t ~round_id ~channels ~touched ~performs:!performs
        ~accounted:!accounted ~per_disk;
    t.rounds_done <- t.rounds_done + 1;
    incr rounds_used;
    (match t.trace with
     | None -> ()
     | Some tr ->
       Trace.record tr
         { Trace.round = round_id; op; per_disk; retries = !retries;
           degraded = !degraded; shard = Trace.shard tr; attempt = 0 });
    add_disk_blocks t ~op per_disk
  done;
  !rounds_used

(* Strip and verify a raw stored block down to its payload. [Ok None]
   = never written (reads as all-empty); [Error ()] = the stored bits
   fail their checksum. Without an integrity envelope everything
   passes. *)
let verify t (d : 'a option array option) =
  match t.integrity, d with
  | None, _ -> Ok d
  | Some _, None -> Ok None
  | Some itg, Some stored ->
    (match itg.check stored with
     | Some payload -> Ok (Some payload)
     | None -> Error ())

(* Counted read of physical addresses with no replica failover: each
   address resolves to [Ok payload] or [Error reason]. Used by scrub,
   which wants per-replica verdicts rather than one healthy answer. *)
(* pdm-lint: domain local — machine state; every machine belongs to
   one shard, driven by that shard's single owning domain *)
let read_phys_batch t paddrs =
  let results = Hashtbl.create 16 in
  let delivered = ref 0 in
  let perform p ~attempt =
    match t.backends.(p.disk).Backend.read ~attempt p.block with
    | Backend.Data d ->
      (match verify t d with
       | Ok payload ->
         Hashtbl.replace results p (Ok payload);
         incr delivered;
         `Done
       | Error () -> `Retry R_corrupt)
    | Backend.Transient -> `Retry R_flaky
    | Backend.Lost ->
      t.down.(p.disk) <- true;
      `Fail R_lost
  in
  let on_fail p reason ~attempts:_ =
    Hashtbl.replace results p (Error reason)
  in
  let rounds = schedule t ~op:Trace.Read ~addrs:paddrs ~perform ~on_fail in
  Stats.add_read_round t.stats ~blocks:!delivered ~rounds;
  results

(* Replicated, verifying read. Each pass schedules one physical
   candidate per still-unserved logical block — the first candidate
   replica whose disk is not known down — and blocks that fail move to
   their next replica for the following pass. A healthy request is one
   pass (the seed's cost); discovering a dead disk costs one extra
   pass for the affected blocks, after which the health cache routes
   straight to the survivors. Only when a block runs out of replicas
   does the terminal failure escape as a structured exception. The
   candidate list per address is normally [0; 1; ...; r-1]; a caller
   that planned its own replica placement (the query engine) passes a
   rotated list so its chosen replica is tried first. *)
(* pdm-lint: domain local — down-disk mask on t, owned by the scheduler *)
let scheduled_read_candidates t with_candidates =
  let results = ref [] in
  let delivered = ref 0 in
  let pending = ref with_candidates in
  while !pending <> [] do
    let info = Hashtbl.create 16 in
    let paddrs =
      List.map
        (fun (a, cands) ->
          let j =
            match cands with
            | [] ->
              (* pdm-lint: allow R3 — unreachable: every pending entry
                 keeps >= 1 candidate (callers seed [0 .. r-1] with
                 r >= 1, and [on_fail] only re-queues the non-empty
                 remainder of the candidate list). *)
              assert false
            | first :: _ ->
              (match
                 List.find_opt (fun j -> not t.down.((phys t a j).disk)) cands
               with
               | Some j -> j
               | None -> first)
          in
          let p = phys t a j in
          Hashtbl.replace info p (a, List.filter (fun x -> x <> j) cands);
          p)
        !pending
    in
    pending := [];
    let before = !delivered in
    let perform p ~attempt =
      match t.backends.(p.disk).Backend.read ~attempt p.block with
      | Backend.Data d ->
        (match verify t d with
         | Ok payload ->
           let a, _ = Hashtbl.find info p in
           results := (a, block_copy t payload) :: !results;
           incr delivered;
           `Done
         | Error () -> `Retry R_corrupt)
      | Backend.Transient -> `Retry R_flaky
      | Backend.Lost ->
        t.down.(p.disk) <- true;
        `Fail R_lost
    in
    let on_fail p reason ~attempts =
      let a, rest = Hashtbl.find info p in
      match rest with
      | _ :: _ -> pending := (a, rest) :: !pending
      | [] -> raise_failure t p reason attempts
    in
    let rounds = schedule t ~op:Trace.Read ~addrs:paddrs ~perform ~on_fail in
    Stats.add_read_round t.stats ~blocks:(!delivered - before) ~rounds
  done;
  !results

let scheduled_read t addrs =
  scheduled_read_candidates t
    (List.map (fun a -> (a, List.init t.replicas Fun.id)) addrs)

(* Independent recomputation of the closed-form fast-path cost: sort
   the disks and count the longest same-disk run, rather than the
   bucket-array walk of [rounds_of_distinct]. Two different code paths
   must agree on every charge. *)
let sanitize_fast_rounds t ~addrs ~rounds =
  let expect =
    match t.model with
    | Parallel_heads -> Imath.cdiv (List.length addrs) t.disks
    | Independent_disks ->
      let sorted = List.sort compare (List.map (fun a -> a.disk) addrs) in
      let worst, _, _ =
        List.fold_left
          (fun (worst, prev, run) d ->
            let run = if prev = Some d then run + 1 else 1 in
            (max worst run, Some d, run))
          (0, None, 0) sorted
      in
      worst
  in
  if rounds <> expect then
    Sanitize.fail ~check:"closed-form-rounds" ~round:t.rounds_done
      (Printf.sprintf "fast path charged %d rounds; recomputed %d" rounds
         expect)

(* The fast path must charge exactly one block transfer per requested
   address and exactly the closed-form number of rounds — no more
   (padding would hide imbalance) and no less (undercharging would
   fake the bounds). *)
let sanitize_fast_charges ~what ~blocks ~rounds_delta ~blocks_delta ~rounds =
  if blocks_delta <> blocks || rounds_delta <> rounds then
    Sanitize.fail ~check:"fast-path-charges"
      (Printf.sprintf
         "%s of %d blocks / %d rounds charged %d blocks / %d rounds" what
         blocks rounds blocks_delta rounds_delta)

(* pdm-lint: domain local — fast-path round charge on t, owned by the scheduler *)
let read t addrs =
  List.iter (check_addr t) addrs;
  let addrs = dedup addrs in
  if scheduled t then scheduled_read t addrs
  else begin
    let rounds = rounds_of_distinct t addrs in
    let before =
      if Sanitize.active () then begin
        sanitize_fast_rounds t ~addrs ~rounds;
        Some (Stats.snapshot t.stats)
      end
      else None
    in
    Stats.add_read_round t.stats ~blocks:(List.length addrs) ~rounds;
    t.rounds_done <- t.rounds_done + rounds;
    let result =
      List.map
        (fun a ->
          Stats.add_disk_read t.stats ~disk:a.disk ~blocks:1;
          match t.backends.(a.disk).Backend.read ~attempt:0 a.block with
          | Backend.Data d -> (a, block_copy t d)
          | Backend.Transient | Backend.Lost ->
            (* pdm-lint: allow R3 — unreachable: the fast path runs only
               when [scheduled t] is false, i.e. the machine has plain
               in-memory backends, which always answer [Data]. *)
            assert false)
        addrs
    in
    (match before with
     | None -> ()
     | Some before ->
       let d = Stats.diff ~after:(Stats.snapshot t.stats) ~before in
       sanitize_fast_charges ~what:"read" ~blocks:(List.length addrs)
         ~rounds_delta:d.Stats.parallel_reads ~blocks_delta:d.Stats.block_reads
         ~rounds);
    result
  end

let read_one t a =
  match read t [ a ] with
  | [ (_, slots) ] -> slots
  | _ ->
    (* pdm-lint: allow R3 — unreachable: {!read} answers each distinct
       requested address exactly once, so a one-address request always
       yields a one-element list. *)
    assert false

(* Replica-directed read: the caller chose which replica should serve
   each block (e.g. two-choice assignment onto the least-loaded disk);
   the chosen replica is tried first and the remaining ones stay as
   failover candidates in home order. On an unreplicated machine every
   preference is 0 and this is exactly {!read}. *)
let read_preferring t prefs =
  List.iter (fun (a, _) -> check_addr t a) prefs;
  let seen = Hashtbl.create 16 in
  let prefs =
    List.filter
      (fun (a, _) ->
        if Hashtbl.mem seen a then false
        else begin
          Hashtbl.add seen a ();
          true
        end)
      prefs
  in
  if not (scheduled t) then read t (List.map fst prefs)
  else
    scheduled_read_candidates t
      (List.map
         (fun (a, j) ->
           if j < 0 || j >= t.replicas then
             invalid_arg "Pdm.read_preferring: replica out of range";
           (a, j :: List.filter (fun x -> x <> j) (List.init t.replicas Fun.id)))
         prefs)

(* Run a user-supplied integrity envelope, cross-checking (under the
   sanitizer) that it really produces stored images of the size it
   declared — a lying envelope would silently shift every block's
   payload boundary. *)
let apply_envelope t itg slots =
  let sealed = itg.seal slots in
  if
    Sanitize.active ()
    && Array.length sealed <> t.block_size + itg.overhead
  then
    Sanitize.fail ~check:"integrity-envelope" ~round:t.rounds_done
      (Printf.sprintf
         "envelope %S declared overhead %d but sealed %d cells to %d"
         itg.tag itg.overhead t.block_size (Array.length sealed));
  sealed

(* Seal a payload for storage (checksum appended when the machine
   carries an integrity envelope). Always returns a fresh array. *)
let seal t slots =
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.write: block has wrong length";
  match t.integrity with
  | None -> Array.copy slots
  | Some itg -> apply_envelope t itg slots

(* Store already-sealed data at one physical address. Raises
   [Backend.Disk_failed] on a dead disk before touching the
   allocation counter. *)
(* pdm-lint: domain local — allocation high-water mark on t, owned by the scheduler *)
let store_phys t p data =
  let bk = t.backends.(p.disk) in
  let fresh = not (bk.Backend.exists p.block) in
  bk.Backend.write p.block (Array.copy data);
  if fresh then t.allocated <- t.allocated + 1

(* Single-block counted write used by repair; false when the target
   disk turns out to be dead. *)
(* pdm-lint: domain local — machine state; every machine belongs to
   one shard, driven by that shard's single owning domain *)
let write_phys_one t p data =
  let ok = ref false in
  let perform p ~attempt:_ =
    match store_phys t p data with
    | () ->
      ok := true;
      `Done
    | exception Backend.Disk_failed _ ->
      t.down.(p.disk) <- true;
      `Fail R_lost
  in
  let on_fail _ _ ~attempts:_ = () in
  let rounds = schedule t ~op:Trace.Write ~addrs:[ p ] ~perform ~on_fail in
  Stats.add_write_round t.stats ~blocks:(if !ok then 1 else 0) ~rounds;
  !ok

(* Replicated write: every logical block is sealed once and stored on
   all r of its replica disks in one scheduled request. A replica
   landing on a disk that is (or turns out to be) dead is skipped —
   the block survives as long as one replica is stored; only when all
   r replicas fail does the write raise. *)
(* pdm-lint: domain local — down-disk mask on t, owned by the scheduler *)
let scheduled_write t blocks =
  let sealed = Hashtbl.create 16 in
  let owner = Hashtbl.create 16 in
  let failed = Hashtbl.create 4 in
  let stored = ref 0 in
  let fail_one p reason attempts =
    let a = Hashtbl.find owner p in
    let n = 1 + Option.value (Hashtbl.find_opt failed a) ~default:0 in
    Hashtbl.replace failed a n;
    if n >= t.replicas then raise_failure t p reason attempts
  in
  let paddrs =
    List.concat_map
      (fun (a, slots) ->
        let data = seal t slots in
        List.init t.replicas (fun j ->
            let p = phys t a j in
            Hashtbl.replace sealed p data;
            Hashtbl.replace owner p a;
            p))
      blocks
  in
  (* replicas on disks already known down fail without costing a
     round — there is nothing to schedule there *)
  let paddrs =
    List.filter
      (fun p ->
        if t.down.(p.disk) then begin
          fail_one p R_lost 0;
          false
        end
        else true)
      paddrs
  in
  let perform p ~attempt:_ =
    match store_phys t p (Hashtbl.find sealed p) with
    | () ->
      incr stored;
      `Done
    | exception Backend.Disk_failed _ ->
      t.down.(p.disk) <- true;
      `Fail R_lost
  in
  let on_fail p reason ~attempts = fail_one p reason attempts in
  let rounds = schedule t ~op:Trace.Write ~addrs:paddrs ~perform ~on_fail in
  Stats.add_write_round t.stats ~blocks:!stored ~rounds

(* Fast-path store (identical to the seed simulator). *)
(* pdm-lint: domain local — allocation high-water mark on t, owned by the scheduler *)
let store_block t a slots =
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.write: block has wrong length";
  let bk = t.backends.(a.disk) in
  if not (bk.Backend.exists a.block) then t.allocated <- t.allocated + 1;
  bk.Backend.write a.block (Array.copy slots)

(* pdm-lint: domain local — fast-path round charge on t, owned by the scheduler *)
let write t blocks =
  List.iter (fun (a, _) -> check_addr t a) blocks;
  let addrs = List.map fst blocks in
  if List.length (dedup addrs) <> List.length addrs then
    invalid_arg "Pdm.write: duplicate address in one request";
  List.iter (notify_write t) addrs;
  if scheduled t then scheduled_write t blocks
  else begin
    let rounds = rounds_of_distinct t addrs in
    let before =
      if Sanitize.active () then begin
        sanitize_fast_rounds t ~addrs ~rounds;
        Some (Stats.snapshot t.stats)
      end
      else None
    in
    Stats.add_write_round t.stats ~blocks:(List.length blocks) ~rounds;
    t.rounds_done <- t.rounds_done + rounds;
    List.iter
      (fun (a, slots) ->
        Stats.add_disk_write t.stats ~disk:a.disk ~blocks:1;
        store_block t a slots)
      blocks;
    match before with
    | None -> ()
    | Some before ->
      let d = Stats.diff ~after:(Stats.snapshot t.stats) ~before in
      sanitize_fast_charges ~what:"write" ~blocks:(List.length blocks)
        ~rounds_delta:d.Stats.parallel_writes
        ~blocks_delta:d.Stats.block_writes ~rounds
  end

let write_one t a slots = write t [ (a, slots) ]

(* Uncounted view of one logical block: the first replica whose
   stored bits exist and pass the integrity check, as a payload. *)
let stored_payload t a =
  let rec go j =
    if j >= t.replicas then None
    else
      let p = phys t a j in
      match t.backends.(p.disk).Backend.peek p.block with
      | None -> go (j + 1)
      | Some stored ->
        (match t.integrity with
         | None -> Some stored
         | Some itg ->
           (match itg.check stored with
            | Some payload -> Some payload
            | None -> go (j + 1)))
  in
  go 0

let peek t a =
  check_addr t a;
  block_copy t (stored_payload t a)

let poke t a slots =
  check_addr t a;
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.poke: block has wrong length";
  notify_write t a;
  let data =
    match t.integrity with
    | None -> slots
    | Some itg -> apply_envelope t itg slots
  in
  for j = 0 to t.replicas - 1 do
    let p = phys t a j in
    let bk = t.backends.(p.disk) in
    if not (bk.Backend.exists p.block) then t.allocated <- t.allocated + 1;
    bk.Backend.poke p.block (Some (Array.copy data))
  done

(* Durability barrier across every live disk (uncounted: PDM rounds
   model block transfers, not flushes). The journal calls this at its
   commit points so real-I/O backends are crash-consistent. *)
let barrier t = Array.iter (fun bk -> bk.Backend.barrier ()) t.backends

let allocated_blocks t = t.allocated

let capacity_items t = t.disks * t.blocks_per_disk * t.block_size

let iter_allocated t f =
  for d = 0 to t.disks - 1 do
    for b = 0 to t.blocks_per_disk - 1 do
      let a = { disk = d; block = b } in
      match stored_payload t a with
      | None -> ()
      | Some payload -> f a payload
    done
  done

(* ------------------------------------------------------------------ *)
(* Failure, damage and repair                                          *)

(* pdm-lint: domain local — machine state; every machine belongs to
   one shard, driven by that shard's single owning domain *)
let kill_disk t d =
  if d < 0 || d >= physical_disks t then
    invalid_arg "Pdm.kill_disk: disk out of range";
  let blocks = physical_blocks_of ~replicas:t.replicas
      ~blocks_per_disk:t.blocks_per_disk in
  t.backends.(d) <- Backend.dead ~disk:d ~blocks;
  t.down.(d) <- true;
  t.killed <- true

let damage_stored t a ~replica =
  check_addr t a;
  if replica < 0 || replica >= t.replicas then
    invalid_arg "Pdm.damage_stored: replica out of range";
  let p = phys t a replica in
  let bk = t.backends.(p.disk) in
  match bk.Backend.peek p.block with
  | None -> ()
  | Some slots ->
    let n = Array.length slots in
    if n >= 2 then
      bk.Backend.poke p.block
        (Some (Array.init n (fun i -> slots.((i + n - 1) mod n))))

type scrub_report = {
  scanned_blocks : int;
  intact_replicas : int;
  corrupt_replicas : int;
  missing_replicas : int;
  repaired_replicas : int;
  remapped_replicas : int;
  unrepairable_replicas : int;
  lost_blocks : int;
  scan_rounds : int;
  repair_rounds : int;
}

(* Next free block on a healthy spare disk, or None when the spare
   budget is exhausted. *)
(* pdm-lint: domain local — machine state; every machine belongs to
   one shard, driven by that shard's single owning domain *)
let alloc_spare t =
  let rec go s =
    if s >= t.spares then None
    else
      let d = t.disks + s in
      let cap =
        physical_blocks_of ~replicas:t.replicas
          ~blocks_per_disk:t.blocks_per_disk
      in
      if t.down.(d) || t.spare_next.(s) >= cap then go (s + 1)
      else begin
        let b = t.spare_next.(s) in
        t.spare_next.(s) <- b + 1;
        Some { disk = d; block = b }
      end
  in
  go 0

(* Does any replica of [a] hold raw bits? Decides whether the logical
   block was ever written — an uncounted metadata question (a real
   system reads its allocation map, not the platters). *)
let raw_allocated t a =
  let rec go j =
    j < t.replicas
    &&
    let p = phys t a j in
    t.backends.(p.disk).Backend.exists p.block || go (j + 1)
  in
  go 0

(* Scrub: sweep every allocated logical block, read all its replicas
   (one scheduled batch per block — r distinct disks, so one round
   when healthy), verify checksums, and rewrite every bad replica
   from an intact one: in place when its disk still answers, onto a
   spare disk (recording the move in the remap table) when it does
   not. Every verification read and repair write is charged through
   the normal scheduler, so the report's round counts are the honest
   repair I/O budget. *)
(* pdm-lint: domain local — machine state; every machine belongs to
   one shard, driven by that shard's single owning domain *)
let scrub t =
  let scanned = ref 0 and intact = ref 0 and corrupt = ref 0 in
  let missing = ref 0 and repaired = ref 0 and remapped = ref 0 in
  let unrepairable = ref 0 and lost = ref 0 in
  let scan_rounds = ref 0 and repair_rounds = ref 0 in
  let counting counter f =
    let before = t.rounds_done in
    let r = f () in
    counter := !counter + (t.rounds_done - before);
    r
  in
  (* Re-store [payload] for replica [j] of [a]: in place if that disk
     answers, else onto a spare; verify the write by reading it back. *)
  let repair_replica a j payload =
    (* The stored bits of this logical block are about to be
       rewritten; any cache must drop its copy (conservatively, even
       if the repair then fails). *)
    notify_write t a;
    let data = seal t payload in
    let home = phys t a j in
    let try_target target =
      counting repair_rounds (fun () ->
          write_phys_one t target data
          &&
          match Hashtbl.find_opt (read_phys_batch t [ target ]) target with
          | Some (Ok (Some _)) -> true
          | _ -> false)
    in
    let record target =
      incr repaired;
      if target <> home then begin
        Hashtbl.replace t.remap (a, j) target;
        incr remapped
      end
    in
    let to_spare () =
      match alloc_spare t with
      | None -> incr unrepairable
      | Some target ->
        if try_target target then record target else incr unrepairable
    in
    if t.down.(home.disk) then to_spare ()
    else if try_target home then record home
    else to_spare ()
  in
  for d = 0 to t.disks - 1 do
    for b = 0 to t.blocks_per_disk - 1 do
      let a = { disk = d; block = b } in
      if raw_allocated t a then begin
        incr scanned;
        let homes = List.init t.replicas (fun j -> (j, phys t a j)) in
        let live, dead =
          List.partition (fun (_, p) -> not t.down.(p.disk)) homes
        in
        let verdicts =
          counting scan_rounds (fun () ->
              read_phys_batch t (List.map snd live))
        in
        let status (j, p) =
          if t.down.(p.disk) then (j, `Missing)
          else
            match Hashtbl.find_opt verdicts p with
            | Some (Ok (Some payload)) -> (j, `Intact payload)
            | Some (Ok None) -> (j, `Missing)
            | Some (Error R_corrupt) -> (j, `Corrupt)
            | Some (Error (R_lost | R_flaky)) | None -> (j, `Missing)
        in
        let statuses = List.map status (live @ dead) in
        let good =
          List.find_map
            (function _, `Intact payload -> Some payload | _ -> None)
            (List.sort (fun (j, _) (k, _) -> compare j k) statuses)
        in
        List.iter
          (fun (_, st) ->
            match st with
            | `Intact _ -> incr intact
            | `Corrupt -> incr corrupt
            | `Missing -> incr missing)
          statuses;
        match good with
        | None -> incr lost
        | Some payload ->
          List.iter
            (fun (j, st) ->
              match st with
              | `Intact _ -> ()
              | `Corrupt | `Missing -> repair_replica a j payload)
            statuses
      end
    done
  done;
  { scanned_blocks = !scanned;
    intact_replicas = !intact;
    corrupt_replicas = !corrupt;
    missing_replicas = !missing;
    repaired_replicas = !repaired;
    remapped_replicas = !remapped;
    unrepairable_replicas = !unrepairable;
    lost_blocks = !lost;
    scan_rounds = !scan_rounds;
    repair_rounds = !repair_rounds }

(* Persistence: geometry and store only; counters restart at zero and
   the reloaded machine always has plain in-memory backends (fault
   schedules, traces and disk health are run-time configuration, not
   state). Integrity envelopes are closures, which Marshal cannot
   carry — the loader takes the envelope again as an argument. *)
type 'a snapshot_on_disk = {
  s_disks : int;
  s_block_size : int;
  s_blocks_per_disk : int;
  s_replicas : int;
  s_spares : int;
  s_model : model;
  s_store : 'a option array option array array;
  s_remap : ((addr * int) * addr) list;
  s_spare_next : int array;
  s_allocated : int;
}

let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc
        { s_disks = t.disks; s_block_size = t.block_size;
          s_blocks_per_disk = t.blocks_per_disk; s_replicas = t.replicas;
          s_spares = t.spares; s_model = t.model;
          s_store = Array.map (fun b -> b.Backend.dump ()) t.backends;
          s_remap = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.remap [];
          s_spare_next = Array.copy t.spare_next;
          s_allocated = t.allocated }
        [])

let load_from_file ?integrity path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let s : 'a snapshot_on_disk = Marshal.from_channel ic in
      (match integrity with
       | Some i when i.overhead < 0 ->
         invalid_arg "Pdm.load_from_file: integrity overhead must be >= 0"
       | _ -> ());
      let phys_disks =
        physical_disks_of ~disks:s.s_disks ~spares:s.s_spares
      in
      let remap = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace remap k v) s.s_remap;
      { disks = s.s_disks; block_size = s.s_block_size;
        blocks_per_disk = s.s_blocks_per_disk; replicas = s.s_replicas;
        spares = s.s_spares; model = s.s_model;
        stats = Stats.create ();
        integrity;
        backends =
          Array.init phys_disks (fun d ->
              Backend.of_store ~disk:d s.s_store.(d));
        down = Array.make phys_disks false;
        remap;
        spare_next = Array.copy s.s_spare_next;
        fault_spec = None;
        custom_backends = false;
        killed = false;
        trace = None;
        rounds_done = 0;
        allocated = s.s_allocated;
        write_listeners = [] })
