module Imath = Pdm_util.Imath

type model = Independent_disks | Parallel_heads

type addr = { disk : int; block : int }

type 'a t = {
  disks : int;
  block_size : int;
  blocks_per_disk : int;
  model : model;
  stats : Stats.t;
  store : 'a option array option array array;  (* disk -> block -> slots *)
  mutable allocated : int;
}

let create ?(model = Independent_disks) ?stats ~disks ~block_size
    ~blocks_per_disk () =
  if disks < 1 then invalid_arg "Pdm.create: disks must be >= 1";
  if block_size < 1 then invalid_arg "Pdm.create: block_size must be >= 1";
  if blocks_per_disk < 1 then invalid_arg "Pdm.create: blocks_per_disk >= 1";
  let stats = match stats with Some s -> s | None -> Stats.create () in
  { disks; block_size; blocks_per_disk; model; stats;
    store = Array.init disks (fun _ -> Array.make blocks_per_disk None);
    allocated = 0 }

let disks t = t.disks
let block_size t = t.block_size
let blocks_per_disk t = t.blocks_per_disk
let model t = t.model
let stats t = t.stats

let check_addr t { disk; block } =
  if disk < 0 || disk >= t.disks then invalid_arg "Pdm: disk out of range";
  if block < 0 || block >= t.blocks_per_disk then
    invalid_arg "Pdm: block out of range"

let dedup addrs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    addrs

(* Minimal number of rounds to transfer the given distinct blocks. *)
let rounds_of_distinct t addrs =
  match addrs with
  | [] -> 0
  | _ ->
    (match t.model with
     | Parallel_heads -> Imath.cdiv (List.length addrs) t.disks
     | Independent_disks ->
       let per_disk = Array.make t.disks 0 in
       List.iter (fun a -> per_disk.(a.disk) <- per_disk.(a.disk) + 1) addrs;
       Array.fold_left max 0 per_disk)

let rounds_for t addrs =
  List.iter (check_addr t) addrs;
  rounds_of_distinct t (dedup addrs)

let block_copy t = function
  | None -> Array.make t.block_size None
  | Some slots -> Array.copy slots

let read t addrs =
  List.iter (check_addr t) addrs;
  let addrs = dedup addrs in
  let rounds = rounds_of_distinct t addrs in
  Stats.add_read_round t.stats ~blocks:(List.length addrs) ~rounds;
  List.map (fun a -> (a, block_copy t t.store.(a.disk).(a.block))) addrs

let read_one t a =
  match read t [ a ] with
  | [ (_, slots) ] -> slots
  | _ -> assert false

let store_block t a slots =
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.write: block has wrong length";
  if t.store.(a.disk).(a.block) = None then t.allocated <- t.allocated + 1;
  t.store.(a.disk).(a.block) <- Some (Array.copy slots)

let write t blocks =
  List.iter (fun (a, _) -> check_addr t a) blocks;
  let addrs = List.map fst blocks in
  if List.length (dedup addrs) <> List.length addrs then
    invalid_arg "Pdm.write: duplicate address in one request";
  let rounds = rounds_of_distinct t addrs in
  Stats.add_write_round t.stats ~blocks:(List.length blocks) ~rounds;
  List.iter (fun (a, slots) -> store_block t a slots) blocks

let write_one t a slots = write t [ (a, slots) ]

let peek t a =
  check_addr t a;
  block_copy t t.store.(a.disk).(a.block)

let poke t a slots =
  check_addr t a;
  if Array.length slots <> t.block_size then
    invalid_arg "Pdm.poke: block has wrong length";
  store_block t a slots

let allocated_blocks t = t.allocated

let capacity_items t = t.disks * t.blocks_per_disk * t.block_size

let iter_allocated t f =
  for d = 0 to t.disks - 1 do
    for b = 0 to t.blocks_per_disk - 1 do
      match t.store.(d).(b) with
      | None -> ()
      | Some slots -> f { disk = d; block = b } slots
    done
  done

(* Persistence: geometry and store only; counters restart at zero. *)
type 'a snapshot_on_disk = {
  s_disks : int;
  s_block_size : int;
  s_blocks_per_disk : int;
  s_model : model;
  s_store : 'a option array option array array;
  s_allocated : int;
}

let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc
        { s_disks = t.disks; s_block_size = t.block_size;
          s_blocks_per_disk = t.blocks_per_disk; s_model = t.model;
          s_store = t.store; s_allocated = t.allocated }
        [])

let load_from_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let s : 'a snapshot_on_disk = Marshal.from_channel ic in
      { disks = s.s_disks; block_size = s.s_block_size;
        blocks_per_disk = s.s_blocks_per_disk; model = s.s_model;
        stats = Stats.create (); store = s.s_store;
        allocated = s.s_allocated })
