(** An LRU buffer cache in front of a machine.

    Real systems keep a block cache in RAM; the introduction's "3 disk
    accesses" B-tree figure already assumes the root is resident. This
    module makes the assumption explicit and measurable: reads served
    from the cache cost nothing, misses are forwarded (and counted) by
    the underlying machine, and writes are write-through (always
    counted) while refreshing the cached copy.

    Interesting asymmetry for the paper's story: a B-tree concentrates
    its upper levels into few hot blocks that any small LRU captures,
    while the expander dictionary's accesses are spread uniformly over
    all buckets by design — caching helps it little. Experiment E15
    quantifies both sides.

    The cache's capacity counts blocks; its RAM footprint is
    capacity × B words, which callers can register with
    {!Internal_memory} if they track RAM budgets. *)

type 'a t

val create : 'a Pdm.t -> capacity_blocks:int -> 'a t
(** The cache registers a {!Pdm.add_write_listener} on the machine, so
    writes that bypass it — journal replay, scrub repair, a second
    handle on the same machine — invalidate the affected blocks
    instead of leaving stale copies behind. The registration lasts for
    the machine's lifetime. *)

val machine : 'a t -> 'a Pdm.t

val capacity : 'a t -> int

val read : 'a t -> Pdm.addr list -> (Pdm.addr * 'a option array) list
(** Hits are free; misses are fetched in one machine request (scheduled
    into the minimal rounds) and inserted, evicting least recently used
    blocks. Returned arrays are private copies. *)

val read_one : 'a t -> Pdm.addr -> 'a option array

val find_cached : 'a t -> Pdm.addr -> 'a option array option
(** Probe without fetching: [Some copy] (counted as a hit, LRU
    touched) when resident, [None] (counted as a miss) otherwise —
    the machine is never touched. For schedulers that plan their own
    fetches for the misses, like the batched query engine. *)

val note_fetched : 'a t -> Pdm.addr -> 'a option array -> unit
(** Install a block the caller fetched through its own (counted)
    machine request — the companion to {!find_cached}. Counts as
    neither hit nor miss; evicts LRU blocks as needed. *)

val write : 'a t -> (Pdm.addr * 'a option array) list -> unit
(** Write-through: forwarded to the machine and cached. *)

val hits : 'a t -> int

val misses : 'a t -> int

val resident : 'a t -> int
(** Blocks currently cached. *)

val flush : 'a t -> unit
(** Drop all cached blocks (the counters survive). *)
