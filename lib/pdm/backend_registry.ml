(* Name-keyed registry of storage-backend factories.

   The machine layer never depends on any concrete real-I/O backend;
   providers (lib/io) register an [int Backend.factory] under a kind
   name at module-init time, and front ends (CLI, bench, sim) resolve
   "--backend <kind>" here. "mem" is built in and resolves to the
   factory that always answers [None], i.e. the default memory disks. *)

type entry = { doc : string; make : unit -> int Backend.factory }

let table : (string, entry) Hashtbl.t = Hashtbl.create 8

let mem_factory : int Backend.factory = fun ~blocks:_ ~slots:_ -> None

let () =
  Hashtbl.replace table "mem"
    { doc = "in-memory arrays (the default PDM simulation store)";
      make = (fun () -> mem_factory) }

let register ~kind ~doc make =
  let kind = String.lowercase_ascii kind in
  if kind = "mem" then invalid_arg "Backend_registry.register: mem is built in";
  Hashtbl.replace table kind { doc; make }

let resolve kind =
  match Hashtbl.find_opt table (String.lowercase_ascii kind) with
  | Some e -> Ok (e.make ())
  | None ->
    let known =
      Hashtbl.fold (fun k _ acc -> k :: acc) table []
      |> List.sort String.compare |> String.concat ", "
    in
    Error (Printf.sprintf "unknown backend %S (known: %s)" kind known)

let kinds () =
  Hashtbl.fold (fun k e acc -> (k, e.doc) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
