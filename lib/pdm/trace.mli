(** Per-round I/O tracing for the PDM simulator.

    When a machine is created with a trace attached, every parallel
    round it executes is recorded as one structured {!event}: the
    global round id, whether it was a read or a write round, how many
    blocks each disk completed, how many transfers failed transiently
    (and were re-issued later), and whether the round was degraded —
    i.e. involved a straggling transfer or a retry.

    Events land in a fixed-capacity ring buffer: recording never
    allocates unboundedly, old rounds fall off the front, and
    {!dropped} says how many did. The buffer exports to JSONL (one
    event per line) and re-imports, so a recorded run can be audited
    offline; {!per_disk_totals} folds a trace back into per-disk block
    counters for cross-checking against {!Stats}. *)

type op = Read | Write

type event = {
  round : int;  (** Global round id (reads and writes share it). *)
  op : op;
  per_disk : int array;  (** Blocks completed per disk this round. *)
  retries : int;  (** Transient failures observed this round. *)
  degraded : bool;  (** Straggler transfer or retry involved. *)
  shard : int;
      (** Which cluster shard's machine recorded the round (0 for a
          standalone machine), so per-shard traces merge without
          ambiguity. *)
  attempt : int;
      (** 0 for an ordinary machine round; [n >= 1] marks the [n]-th
          network attempt of a cluster exchange that timed out and was
          retried — the transport's retry audit trail. *)
}

type t

val create : ?capacity:int -> ?shard:int -> unit -> t
(** Ring buffer holding the last [capacity] (default 4096) rounds.
    [shard] (default 0, must be >= 0) is stamped onto every event
    {!record}ed through this buffer. *)

val capacity : t -> int

val shard : t -> int
(** The tag {!record} stamps onto events. *)

val length : t -> int
(** Events currently held (<= capacity). *)

val recorded : t -> int
(** Events ever recorded, including dropped ones. *)

val dropped : t -> int
(** Events that fell off the front: [recorded - length]. *)

val record : t -> event -> unit
(** The stored event's [shard] is overwritten with the buffer's tag. *)

val events : t -> event list
(** Oldest first. *)

val clear : t -> unit

val per_disk_totals : event list -> int array * int array
(** [(reads, writes)]: blocks completed per disk, summed over the
    events. The arrays are as long as the widest [per_disk] seen. *)

val event_to_json : event -> string
(** One-line JSON object, e.g.
    [{"round":3,"op":"read","per_disk":[1,0,2],"retries":1,"degraded":true,"shard":0,"attempt":0}]. *)

val event_of_json : string -> event option
(** Inverse of {!event_to_json} (accepts exactly the shape it emits,
    with flexible whitespace). Missing ["shard"] / ["attempt"] fields
    default to 0, so trace files written before those tags existed
    still parse. [None] on malformed input. *)

val export_jsonl : t -> string -> unit
(** Write all held events, oldest first, one JSON object per line. *)

type parse_error = { path : string; line : int; text : string }
(** Where a JSONL import went wrong: file, 1-based line number, and
    the offending line (as read). *)

exception Malformed_line of parse_error
(** Raised by {!load_jsonl} on the first line {!event_of_json}
    rejects. Registered with [Printexc], so an uncaught one still
    prints the position. *)

val pp_parse_error : Format.formatter -> parse_error -> unit
(** ["file:12: malformed trace event \"...\""]. *)

val fold_jsonl : string -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Stream a file written by {!export_jsonl} one line at a time,
    folding [f] over its events in file order — constant memory
    regardless of file size, so multi-million-round traces and
    simulation repro files replay without materializing a list.
    Blank lines are skipped; raises {!Malformed_line} on the first
    line that does not parse. *)

val iter_jsonl : string -> (event -> unit) -> unit
(** [iter_jsonl path f] = [fold_jsonl path ~init:() ~f:(fun () e -> f e)]. *)

val load_jsonl : string -> event list
(** Read a whole file written by {!export_jsonl} into a list (built on
    {!fold_jsonl}; prefer the streaming interfaces for large files).
    Skips blank lines, raises {!Malformed_line} on the first line that
    does not parse. *)

val load_jsonl_result : string -> (event list, parse_error) result
(** Exception-free variant of {!load_jsonl} for callers — the CLI —
    that want to render the error themselves. *)

val pp_event : Format.formatter -> event -> unit
