type op = Read | Write

type event = {
  round : int;
  op : op;
  per_disk : int array;
  retries : int;
  degraded : bool;
  shard : int;
  attempt : int;  (* 0 = machine round; n >= 1 = nth network attempt *)
}

type t = {
  buf : event option array;
  shard : int;  (* stamped onto every recorded event *)
  mutable next : int;  (* slot the next event goes into *)
  mutable count : int;  (* events ever recorded *)
}

let create ?(capacity = 4096) ?(shard = 0) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  if shard < 0 then invalid_arg "Trace.create: shard must be >= 0";
  { buf = Array.make capacity None; shard; next = 0; count = 0 }

let capacity t = Array.length t.buf

let shard t = t.shard

let recorded t = t.count

let length t = min t.count (capacity t)

let dropped t = t.count - length t

(* pdm-lint: domain local — trace ring buffer is per-run diagnostics with a single writer *)
let record t e =
  t.buf.(t.next) <- Some { e with shard = t.shard };
  t.next <- (t.next + 1) mod capacity t;
  t.count <- t.count + 1

let events t =
  let n = length t in
  let cap = capacity t in
  let first = (t.next - n + cap * 2) mod cap in
  List.init n (fun i ->
      match t.buf.((first + i) mod cap) with
      | Some e -> e
      | None ->
        (* pdm-lint: allow R3 — unreachable: [n = min count cap], so
           the [n] cells ending at [next - 1] have all been written by
           [record] since creation or the last [clear]. *)
        assert false)

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.next <- 0;
  t.count <- 0

let per_disk_totals evs =
  let width =
    List.fold_left (fun w e -> max w (Array.length e.per_disk)) 0 evs
  in
  let reads = Array.make width 0 and writes = Array.make width 0 in
  List.iter
    (fun e ->
      let into = match e.op with Read -> reads | Write -> writes in
      Array.iteri (fun d n -> into.(d) <- into.(d) + n) e.per_disk)
    evs;
  (reads, writes)

let op_name = function Read -> "read" | Write -> "write"

let event_to_json e =
  Printf.sprintf
    {|{"round":%d,"op":"%s","per_disk":[%s],"retries":%d,"degraded":%b,"shard":%d,"attempt":%d}|}
    e.round (op_name e.op)
    (String.concat "," (Array.to_list (Array.map string_of_int e.per_disk)))
    e.retries e.degraded e.shard e.attempt

(* A tiny scanner for exactly the object shape we emit. Fields may
   appear in any order; whitespace between tokens is tolerated. *)
let event_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let eat c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then (incr pos; true) else false
  in
  let scan_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && line.[!pos] = '-' then incr pos;
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do incr pos done;
    if !pos = start then None
    else int_of_string_opt (String.sub line start (!pos - start))
  in
  let scan_lit lit =
    skip_ws ();
    let l = String.length lit in
    if !pos + l <= n && String.sub line !pos l = lit then (pos := !pos + l; true)
    else false
  in
  let scan_string () =
    skip_ws ();
    if not (eat '"') then None
    else begin
      let start = !pos in
      while !pos < n && line.[!pos] <> '"' do incr pos done;
      if !pos >= n then None
      else begin
        let s = String.sub line start (!pos - start) in
        incr pos;
        Some s
      end
    end
  in
  let round = ref None and op = ref None and per_disk = ref None in
  let retries = ref None and degraded = ref None in
  (* [shard] and [attempt] were added after the first JSONL format
     shipped: absent means 0, so older trace files stay parseable *)
  let shard = ref 0 in
  let attempt = ref 0 in
  let field () =
    match scan_string () with
    | None -> false
    | Some key ->
      eat ':'
      && (match key with
          | "round" ->
            (match scan_int () with
             | Some v -> round := Some v; true
             | None -> false)
          | "retries" ->
            (match scan_int () with
             | Some v -> retries := Some v; true
             | None -> false)
          | "shard" ->
            (match scan_int () with
             | Some v when v >= 0 -> shard := v; true
             | Some _ | None -> false)
          | "attempt" ->
            (match scan_int () with
             | Some v when v >= 0 -> attempt := v; true
             | Some _ | None -> false)
          | "op" ->
            (match scan_string () with
             | Some "read" -> op := Some Read; true
             | Some "write" -> op := Some Write; true
             | Some _ | None -> false)
          | "degraded" ->
            if scan_lit "true" then (degraded := Some true; true)
            else if scan_lit "false" then (degraded := Some false; true)
            else false
          | "per_disk" ->
            if not (eat '[') then false
            else begin
              let vals = ref [] in
              let ok = ref true in
              (skip_ws ();
               if !pos < n && line.[!pos] = ']' then incr pos
               else
                 let continue = ref true in
                 while !continue do
                   match scan_int () with
                   | Some v ->
                     vals := v :: !vals;
                     if eat ',' then ()
                     else if eat ']' then continue := false
                     else (ok := false; continue := false)
                   | None -> ok := false; continue := false
                 done);
              if !ok then
                (per_disk := Some (Array.of_list (List.rev !vals)); true)
              else false
            end
          | _ -> false)
  in
  let ok =
    eat '{'
    && (let more = ref true and good = ref true in
        while !more && !good do
          if not (field ()) then good := false
          else if eat ',' then ()
          else more := false
        done;
        !good)
    && eat '}'
  in
  if not ok then None
  else
    match (!round, !op, !per_disk, !retries, !degraded) with
    | Some round, Some op, Some per_disk, Some retries, Some degraded ->
      Some
        { round; op; per_disk; retries; degraded; shard = !shard;
          attempt = !attempt }
    | _ -> None

let export_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (event_to_json e);
          output_char oc '\n')
        (events t))

type parse_error = { path : string; line : int; text : string }

exception Malformed_line of parse_error

let pp_parse_error ppf { path; line; text } =
  Format.fprintf ppf "%s:%d: malformed trace event %S" path line
    (if String.length text > 60 then String.sub text 0 60 ^ "..." else text)

let () =
  Printexc.register_printer (function
    | Malformed_line err ->
      Some (Format.asprintf "Trace.Malformed_line(%a)" pp_parse_error err)
    | _ -> None)

let fold_jsonl path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc lineno =
        match input_line ic with
        | exception End_of_file -> acc
        | "" -> loop acc (lineno + 1)
        | line ->
          (match event_of_json line with
           | Some e -> loop (f acc e) (lineno + 1)
           | None ->
             raise (Malformed_line { path; line = lineno; text = line }))
      in
      loop init 1)

let iter_jsonl path f = fold_jsonl path ~init:() ~f:(fun () e -> f e)

let load_jsonl path =
  List.rev (fold_jsonl path ~init:[] ~f:(fun acc e -> e :: acc))

let load_jsonl_result path =
  match load_jsonl path with
  | evs -> Ok evs
  | exception Malformed_line err -> Error err

let pp_event ppf (e : event) =
  Format.fprintf ppf "%sround %d %s [%s]%s%s%s"
    (if e.shard > 0 then Printf.sprintf "shard %d " e.shard else "")
    e.round (op_name e.op)
    (String.concat ";" (Array.to_list (Array.map string_of_int e.per_disk)))
    (if e.retries > 0 then Printf.sprintf " %d retried" e.retries else "")
    (if e.degraded then " (degraded)" else "")
    (if e.attempt > 0 then Printf.sprintf " (net attempt %d)" e.attempt
     else "")
