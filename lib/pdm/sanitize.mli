(** Runtime honesty sanitizer for the simulator.

    Every bound the experiments report rests on the simulator charging
    I/O honestly: at most one block per disk per round (independent
    disks), every touched block accounted for, closed-form fast-path
    costs agreeing with the scheduler, integrity envelopes of the
    declared size, and internal-memory accounting staying within its
    budget. These invariants hold by construction; the sanitizer
    cross-checks them at run time — the way a race detector or address
    sanitizer re-verifies what the type system already promised — so a
    future refactor that breaks one fails loudly instead of silently
    skewing every measured figure.

    The flag is global (one process simulates one machine's worth of
    trust); {!Pdm.set_sanitize} is the public switch. Checks cost a
    few array reads per round and are skipped entirely when off. *)

type violation = {
  check : string;  (** Which invariant (e.g. ["one-block-per-disk-per-round"]). *)
  round : int;  (** Machine round when detected; [-1] if not tied to a round. *)
  detail : string;  (** Human-readable specifics. *)
}

exception Sanitizer_violation of violation

val set : bool -> unit
(** Turn sanitizer checks on or off (process-global). *)

val active : unit -> bool

val fail : check:string -> ?round:int -> string -> 'a
(** Raise {!Sanitizer_violation}. Used by the simulator internals;
    exposed so future subsystems can report their own invariants. *)

val describe : exn -> string option
(** One-line rendering of {!Sanitizer_violation}; [None] for other
    exceptions. *)

val with_sanitize : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the flag set, restoring the previous value even
    on exceptions — the test-suite idiom. *)
