(** Internal-memory accounting.

    The paper assumes internal memory holds O(log n) keys (enough for
    the hash-function descriptions of the baselines, and for the
    semi-explicit expander of Section 5 it allows O(N^β) words of
    pre-processed tables). Algorithms register their resident state
    here so experiments can report — and tests can bound — how much
    internal memory each structure actually needs. *)

type t

val create : capacity_words:int -> t
(** Budgeted arena: {!alloc} beyond the capacity raises
    [Invalid_argument]. *)

val unbounded : unit -> t
(** Accounting without a limit (still tracks peak usage). *)

val alloc : t -> words:int -> unit

val free : t -> words:int -> unit

val in_use : t -> int

val peak : t -> int
(** High-water mark of {!in_use} since creation. *)

val capacity : t -> int option
