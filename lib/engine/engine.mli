(** A batched concurrent query engine in front of any dictionary.

    The paper's load-balancing results are about {e batches}: P
    concurrent lookups on D disks finish in O(P/D) rounds because the
    placement spreads any batch's probes almost evenly ([Theorem 2]'s
    deterministic guarantee). The per-key dictionary APIs of
    {!Pdm_dictionary} serve one request per parallel round and cannot
    exhibit that bound. This engine supplies the missing half of the
    system: simulated clients submit lookup/insert requests into an
    admission queue; a batcher closes batches by size or round
    deadline; a planner maps each request to its probe blocks,
    {e coalesces duplicate fetches} across the batch, consults an
    optional {!Pdm_sim.Cache}, and assigns every remaining fetch to
    the least-loaded healthy replica disk; a round executor then packs
    at most one block per disk per round, recording per-request
    latency and a per-round disk-utilization histogram.

    The engine never touches a dictionary's own lookup path — per-key
    {!Pdm_dictionary.One_probe_static.find} etc. charge exactly the
    I/Os they always did. Dictionaries participate through a
    {!type:dict} record whose [lookup] returns a {!type:step}
    (a probe plan with a decode continuation), so the dictionary
    library does not depend on the engine. *)

type addr = Pdm_sim.Pdm.addr

type blocks = (addr * int option array) list
(** Fetched blocks, as {!Pdm_sim.Pdm.read} returns them. Arrays handed
    to continuations may be shared between requests of one batch —
    treat them as read-only. *)

type step =
  | Done of Bytes.t option  (** The answer. *)
  | Fetch of addr list * (blocks -> step)
      (** Probe these blocks, then continue decoding. The continuation
          receives exactly the requested addresses (in order) and may
          itself return another [Fetch] — e.g. the cascade's
          second-round level read. *)

type dict = {
  name : string;
  machine : int Pdm_sim.Pdm.t;
  lookup : int -> step;
  insert : (int -> Bytes.t -> unit) option;
      (** [None] for static structures. Updates (inserts and deletes)
          run serialized at the front of each batch (their machine
          rounds are charged to the engine clock), so a batch's
          lookups observe its updates. *)
  delete : (int -> bool) option;
      (** [None] for structures without removal. Returns whether the
          key was present. Serialized with inserts at the front of
          each batch, in submission order. *)
}

type request = Lookup of int | Insert of int * Bytes.t | Delete of int

val request_key : request -> int

type config = {
  max_batch : int;        (** close a batch at this many requests *)
  deadline_rounds : int;  (** … or when the oldest has waited this long *)
  cache_blocks : int;     (** LRU blocks in front of the machine; 0 = none *)
}

val default_config : config
(** [{ max_batch = 64; deadline_rounds = 4; cache_blocks = 0 }] *)

type outcome = {
  id : int;                (** ticket from {!submit} *)
  request : request;
  value : Bytes.t option;
      (** lookup answer; [None] for inserts; for deletes, the empty
          value when the key was present and removed, [None] when it
          was absent *)
  submitted : int;         (** engine round at admission *)
  completed : int;         (** engine round when served *)
}

val latency : outcome -> int
(** Rounds from admission to answer — queueing included. *)

exception Request_failed of { id : int; key : int; error : exn }
(** A structured storage error ({!Pdm_sim.Backend.Disk_failed},
    [Corrupt_block], [Retries_exhausted]) surfaced while serving
    request [id]; [error] is the underlying exception. Requests of the
    interrupted batch that were not yet completed are dropped. *)

val guard :
  id:int -> key:int -> ?describe:(exn -> string option) ->
  (unit -> 'a) -> 'a
(** [guard ~id ~key f] runs [f], re-raising any exception that
    [describe] recognizes (default {!Pdm_sim.Backend.describe}) as
    {!Request_failed} carrying the request's [id] and [key] — the one
    reporting path for every serving loop, whether requests go through
    an engine, a cluster, or a direct dictionary call. Unrecognized
    exceptions propagate untouched. *)

val deleted_value : bool -> Bytes.t option
(** How delete outcomes encode their found/not-found bit in
    [outcome.value]: [Some Bytes.empty] for a removed key, [None] for
    an absent one. *)

type t

val create : ?config:config -> dict -> t
(** If [config.cache_blocks > 0] the engine owns a
    {!Pdm_sim.Cache.t} on the dictionary's machine (write-invalidated
    by the machine's listener hook, so journal replay and scrub repair
    stay coherent). *)

val dict : t -> dict
val config : t -> config

val submit : t -> request -> int
(** Admit a request, returning its ticket. Runs batches immediately
    when the queue reaches [max_batch]. *)

val pump : t -> unit
(** Run batches while one is due (size or deadline). *)

val drain : t -> unit
(** Run batches until the queue is empty, deadline or not. *)

val idle_round : t -> unit
(** One client-less round: advances the engine clock (aging queued
    requests toward the deadline), then {!pump}s. The duty-cycle knob
    of the [serve] CLI. *)

val take_outcomes : t -> outcome list
(** Completed requests since the last call, sorted by ticket. *)

val round : t -> int
(** The engine clock: fetch rounds + insert rounds + idle rounds. *)

val queue_length : t -> int

type stats = {
  rounds : int;           (** = {!round} *)
  fetch_rounds : int;     (** machine rounds spent on batched fetches *)
  insert_rounds : int;    (** machine rounds spent on serialized inserts *)
  blocks_fetched : int;
  requests_served : int;
  batches : int;
  coalesced : int;        (** duplicate block fetches avoided *)
  cache_hits : int;       (** probes served by the engine's cache *)
  total_latency : int;
  max_latency : int;
}

val stats : t -> stats

val utilization_histogram : t -> int array
(** Blocks fetched in each executor round, in order. Entry [i] ≤ D by
    construction (one block per disk per round). *)

val mean_utilization : t -> float
(** Mean blocks per fetch round; compare against D for bandwidth. *)
