module Pdm = Pdm_sim.Pdm
module Cache = Pdm_sim.Cache
module Backend = Pdm_sim.Backend

type addr = Pdm.addr

type blocks = (addr * int option array) list

type step =
  | Done of Bytes.t option
  | Fetch of addr list * (blocks -> step)

type dict = {
  name : string;
  machine : int Pdm.t;
  lookup : int -> step;
  insert : (int -> Bytes.t -> unit) option;
  delete : (int -> bool) option;
}

type request = Lookup of int | Insert of int * Bytes.t | Delete of int

let request_key = function Lookup k -> k | Insert (k, _) -> k | Delete k -> k

type config = {
  max_batch : int;
  deadline_rounds : int;
  cache_blocks : int;
}

let default_config = { max_batch = 64; deadline_rounds = 4; cache_blocks = 0 }

type outcome = {
  id : int;
  request : request;
  value : Bytes.t option;
  submitted : int;
  completed : int;
}

let latency o = o.completed - o.submitted

exception Request_failed of { id : int; key : int; error : exn }

type pending = { id : int; request : request; submitted : int }

type stats = {
  rounds : int;
  fetch_rounds : int;
  insert_rounds : int;
  blocks_fetched : int;
  requests_served : int;
  batches : int;
  coalesced : int;
  cache_hits : int;
  total_latency : int;
  max_latency : int;
}

type t = {
  dict : dict;
  cfg : config;
  cache : int Cache.t option;
  queue : pending Queue.t;
  mutable next_id : int;
  mutable round : int;
  mutable outcomes : outcome list; (* completion order, reversed *)
  disk_load : int array;           (* cumulative fetches per physical disk *)
  mutable util : int list;         (* blocks per fetch round, reversed *)
  (* counters *)
  mutable served : int;
  mutable batches : int;
  mutable fetch_rounds : int;
  mutable insert_rounds : int;
  mutable blocks_fetched : int;
  mutable coalesced : int;
  mutable cache_hits : int;
  mutable total_latency : int;
  mutable max_latency : int;
}

let create ?(config = default_config) dict =
  if config.max_batch < 1 then invalid_arg "Engine.create: max_batch >= 1";
  if config.deadline_rounds < 0 then
    invalid_arg "Engine.create: deadline_rounds >= 0";
  let cache =
    if config.cache_blocks > 0 then
      Some (Cache.create dict.machine ~capacity_blocks:config.cache_blocks)
    else None
  in
  {
    dict; cfg = config; cache; queue = Queue.create ();
    next_id = 0; round = 0; outcomes = [];
    disk_load = Array.make (Pdm.physical_disks dict.machine) 0;
    util = []; served = 0; batches = 0; fetch_rounds = 0; insert_rounds = 0;
    blocks_fetched = 0; coalesced = 0; cache_hits = 0; total_latency = 0;
    max_latency = 0;
  }

let dict t = t.dict
let config t = t.cfg
let round t = t.round
let queue_length t = Queue.length t.queue

let stats t =
  {
    rounds = t.round;
    fetch_rounds = t.fetch_rounds;
    insert_rounds = t.insert_rounds;
    blocks_fetched = t.blocks_fetched;
    requests_served = t.served;
    batches = t.batches;
    coalesced = t.coalesced;
    cache_hits = t.cache_hits;
    total_latency = t.total_latency;
    max_latency = t.max_latency;
  }

let utilization_histogram t = Array.of_list (List.rev t.util)

let mean_utilization t =
  match t.util with
  | [] -> 0.0
  | l ->
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

(* pdm-lint: domain local — outcome list swap on the engine's own state; one serving domain owns t *)
let take_outcomes t =
  let r = List.rev t.outcomes in
  t.outcomes <- [];
  List.sort (fun (a : outcome) b -> compare a.id b.id) r

(* pdm-lint: domain local — latency/served counters on t, mutated only from the owning round loop *)
let complete t p value =
  let lat = t.round - p.submitted in
  t.served <- t.served + 1;
  t.total_latency <- t.total_latency + lat;
  if lat > t.max_latency then t.max_latency <- lat;
  t.outcomes <-
    { id = p.id; request = p.request; value; submitted = p.submitted;
      completed = t.round }
    :: t.outcomes

(* Wrap the structured storage errors with the id of the request being
   served when they surfaced; anything else propagates untouched. *)
let wrap_failure ~id ~key error =
  match Backend.describe error with
  | Some _ -> Request_failed { id; key; error }
  | None -> error

let guard ~id ~key ?(describe = Backend.describe) f =
  try f ()
  with e -> (
    match describe e with
    | Some _ -> raise (Request_failed { id; key; error = e })
    | None -> raise e)

(* A removed key answers the empty value, an absent one answers
   [None] — so delete outcomes carry their found/not-found bit through
   the same [value] channel lookups use. *)
let deleted_value removed = if removed then Some Bytes.empty else None

(* pdm-lint: domain local — round counters on t, advanced only by the owning round loop *)
let exec_update t p =
  let key = request_key p.request in
  let before = Pdm.rounds_total t.dict.machine in
  let value =
    match p.request with
    | Insert (k, v) -> (
      match t.dict.insert with
      | None -> invalid_arg "Engine: dictionary does not support insert"
      | Some ins ->
        (try ins k v with e -> raise (wrap_failure ~id:p.id ~key e));
        None)
    | Delete k -> (
      match t.dict.delete with
      | None -> invalid_arg "Engine: dictionary does not support delete"
      | Some del ->
        let removed =
          try del k with e -> raise (wrap_failure ~id:p.id ~key e)
        in
        deleted_value removed)
    | Lookup _ -> invalid_arg "Engine: exec_update on a lookup"
  in
  let delta = Pdm.rounds_total t.dict.machine - before in
  t.round <- t.round + delta;
  t.insert_rounds <- t.insert_rounds + delta;
  complete t p value

(* Advance a step as far as the fetched blocks allow. *)
let rec settle tbl st =
  match st with
  | Done _ -> st
  | Fetch (addrs, k) ->
    if List.for_all (Hashtbl.mem tbl) addrs then
      settle tbl (k (List.map (fun a -> (a, Hashtbl.find tbl a)) addrs))
    else st

(* One executor round: assign each wanted block to a free, healthy
   replica disk (least cumulative load wins); blocks whose healthy
   replicas are all busy wait for the next round. A block with no
   healthy replica left is issued anyway on replica 0 so the machine's
   structured error surfaces — attributed to the oldest waiting
   request. *)
(* pdm-lint: domain local — round/util counters and scratch tables owned by the engine's single domain *)
let fetch_all t tbl wanted =
  let m = t.dict.machine in
  let remaining = ref wanted in
  while !remaining <> [] do
    let used = Hashtbl.create 16 in
    let this_round = ref [] and defer = ref [] in
    List.iter
      (fun ((a, _p) as w) ->
        (* one replica_disks call per block per round — the chosen
           disk rides along in the issue triple so the post-read load
           accounting need not re-derive the replica list *)
        let disks = Pdm.replica_disks m a in
        let candidates = List.mapi (fun j d -> (j, d)) disks in
        let healthy =
          List.filter (fun (_, d) -> not (Pdm.disk_down m d)) candidates
        in
        match healthy with
        | [] ->
          let d0 = match disks with d :: _ -> d | [] -> a.disk in
          this_round := (w, 0, d0) :: !this_round
        | _ -> (
          let free =
            List.filter (fun (_, d) -> not (Hashtbl.mem used d)) healthy
          in
          match free with
          | [] -> defer := w :: !defer
          | (j0, d0) :: rest ->
            let j, d =
              List.fold_left
                (fun (bj, bd) (j, d) ->
                  if t.disk_load.(d) < t.disk_load.(bd) then (j, d)
                  else (bj, bd))
                (j0, d0) rest
            in
            Hashtbl.add used d ();
            this_round := (w, j, d) :: !this_round))
      !remaining;
    let issue = List.rev !this_round in
    let assignment = List.map (fun ((a, _), j, _) -> (a, j)) issue in
    let before = Pdm.rounds_total m in
    let fetched =
      try Pdm.read_preferring m assignment
      with e -> (
        match Backend.describe e with
        | None -> raise e
        | Some _ ->
          (* Attribute to the oldest request waiting on a block of the
             failing disk (falling back to the round's first). *)
          let failing_disk =
            match e with
            | Backend.Disk_failed err | Backend.Corrupt_block err ->
              err.Backend.disk
            | Backend.Retries_exhausted { disk; _ } -> disk
            | _ -> -1
          in
          let culprit =
            match
              List.find_opt
                (fun ((a, _), _, _) ->
                  List.mem failing_disk (Pdm.replica_disks m a))
                issue
            with
            | Some ((_, p), _, _) -> Some p
            | None ->
              (match issue with ((_, p), _, _) :: _ -> Some p | [] -> None)
          in
          (match culprit with
           | None ->
             (* an empty round cannot have raised; re-surface as-is *)
             raise e
           | Some culprit ->
             raise
               (Request_failed
                  { id = culprit.id; key = request_key culprit.request;
                    error = e })))
    in
    let delta = max 1 (Pdm.rounds_total m - before) in
    t.round <- t.round + delta;
    t.fetch_rounds <- t.fetch_rounds + delta;
    t.blocks_fetched <- t.blocks_fetched + List.length fetched;
    t.util <- List.length fetched :: t.util;
    List.iter
      (fun (_, _, d) -> t.disk_load.(d) <- t.disk_load.(d) + 1)
      issue;
    List.iter
      (fun (a, data) ->
        Hashtbl.replace tbl a data;
        match t.cache with
        | Some c -> Cache.note_fetched c a data
        | None -> ())
      fetched;
    remaining := List.rev !defer
  done

(* pdm-lint: domain local — batch bookkeeping on t; batches are formed and executed on one domain *)
let run_batch t batch =
  t.batches <- t.batches + 1;
  (* Updates first, serialized in submission order, so every lookup in
     the batch observes all of the batch's writes and removals. *)
  let updates, lookups =
    List.partition
      (fun p ->
        match p.request with Insert _ | Delete _ -> true | Lookup _ -> false)
      batch
  in
  List.iter (fun p -> exec_update t p) updates;
  let tbl : (addr, int option array) Hashtbl.t = Hashtbl.create 64 in
  let inflight =
    List.map (fun p -> (p, ref (t.dict.lookup (request_key p.request)))) lookups
  in
  let rec pass inflight =
    let still =
      List.filter
        (fun (p, str) ->
          match settle tbl !str with
          | Done v ->
            complete t p v;
            false
          | st ->
            str := st;
            true)
        inflight
    in
    if still <> [] then begin
      (* Plan: union of missing blocks across all in-flight steps, in
         first-seen (= oldest request first) order. Every repeat of an
         already-planned or already-fetched block is one coalesced
         fetch. *)
      let seen = Hashtbl.create 64 in
      let wanted = ref [] in
      List.iter
        (fun (p, str) ->
          match !str with
          | Done _ ->
            (* pdm-lint: allow R3 — unreachable: [still] keeps only
               requests whose step did not settle to [Done] in the
               filter above. *)
            assert false
          | Fetch (addrs, _) ->
            List.iter
              (fun a ->
                if Hashtbl.mem tbl a || Hashtbl.mem seen a then
                  t.coalesced <- t.coalesced + 1
                else begin
                  Hashtbl.add seen a ();
                  wanted := (a, p) :: !wanted
                end)
              addrs)
        still;
      let wanted = List.rev !wanted in
      let misses =
        List.filter
          (fun (a, _) ->
            match t.cache with
            | None -> true
            | Some c -> (
              match Cache.find_cached c a with
              | Some data ->
                Hashtbl.replace tbl a data;
                t.cache_hits <- t.cache_hits + 1;
                false
              | None -> true))
          wanted
      in
      if misses <> [] then fetch_all t tbl misses;
      pass still
    end
  in
  pass inflight

(* pdm-lint: domain local — queue pop from t.queue; submit/take run on the same serving domain today *)
let take_batch t =
  let rec go n acc =
    if n = 0 || Queue.is_empty t.queue then List.rev acc
    else go (n - 1) (Queue.pop t.queue :: acc)
  in
  go t.cfg.max_batch []

let due t =
  Queue.length t.queue >= t.cfg.max_batch
  || (not (Queue.is_empty t.queue))
     && t.round - (Queue.peek t.queue).submitted >= t.cfg.deadline_rounds

let pump t =
  while due t do
    run_batch t (take_batch t)
  done

let drain t =
  while not (Queue.is_empty t.queue) do
    run_batch t (take_batch t)
  done

(* pdm-lint: domain local — round counter on t, owned by the round loop *)
let idle_round t =
  t.round <- t.round + 1;
  pump t

(* pdm-lint: domain local — request id counter and queue push; single producer domain today *)
let submit t request =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Queue.add { id; request; submitted = t.round } t.queue;
  pump t;
  id
