(** Memory-mapped storage backend for read-mostly workloads.

    The whole disk file (same layout and file name as
    {!File_backend}) is mapped shared: reads decode straight out of
    the mapping — no syscall, no byte copy, the only allocation is the
    payload array — and writes encode straight into it, left to the
    kernel's writeback until a barrier. The barrier is [msync], so the
    durability contract is identical to the file backend's [fsync].
    Reopening an existing file rebuilds the written bitmap from the
    mapped headers. *)

val create :
  dir:string -> disk:int -> blocks:int -> slots:int -> unit ->
  int Pdm_sim.Backend.t
(** Map (creating and preallocating if needed) this disk's file under
    [dir]. Geometry must match any existing file — see
    {!File_backend.create}. *)
