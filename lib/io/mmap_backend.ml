(* Memory-mapped storage backend for read-mostly workloads.

   The whole disk file is mapped shared; reads decode straight out of
   the mapping (no syscall, no byte copy — the only allocation is the
   payload array) and writes encode straight into it. The barrier is
   msync, making the durability contract identical to the file
   backend's fsync. Reopening scans the mapped headers exactly like
   File_backend reopens its file. *)

module Backend = Pdm_sim.Backend

external msync_stub : Block_codec.buf -> unit = "caml_pdm_io_msync"

type state = {
  map : Block_codec.buf;
  bpb : int;
  slots : int;
  blocks : int;
  written : Bytes.t;
  mutable dirty : bool;
}

let bit_get bm b = Char.code (Bytes.get bm (b lsr 3)) land (1 lsl (b land 7)) <> 0

let bit_set bm b v =
  let i = b lsr 3 in
  let bits = Char.code (Bytes.get bm i) in
  let mask = 1 lsl (b land 7) in
  Bytes.set bm i (Char.chr (if v then bits lor mask else bits land lnot mask))

let load st b =
  if not (bit_get st.written b) then None
  else
    match Block_codec.decode st.map ~off:(b * st.bpb) ~slots:st.slots with
    | Some _ as payload -> payload
    | None ->
      failwith
        (Printf.sprintf "mmap backend: block %d marked written but absent" b)

let store st b payload =
  Block_codec.encode st.map ~off:(b * st.bpb) ~slots:st.slots payload;
  bit_set st.written b (payload <> None);
  st.dirty <- true

let create ~dir ~disk ~blocks ~slots () =
  if blocks < 1 then invalid_arg "Mmap_backend.create: blocks >= 1";
  let bpb = Block_codec.bytes_per_block ~slots in
  let size = blocks * bpb in
  let path = Filename.concat dir (File_backend.file_name ~disk) in
  (* Raw_file preallocates (mapping past end-of-file would SIGBUS);
     the descriptor can close once the mapping exists. *)
  let file = Raw_file.openfile ~path ~size () in
  let map =
    Bigarray.array1_of_genarray
      (Unix.map_file (Raw_file.fd file) Bigarray.Char Bigarray.c_layout true
         [| size |])
  in
  Raw_file.close file;
  let st =
    { map; bpb; slots; blocks;
      written = Bytes.make ((blocks + 7) / 8) '\000'; dirty = false }
  in
  for b = 0 to blocks - 1 do
    if Block_codec.written map ~off:(b * bpb) then bit_set st.written b true
  done;
  { Backend.name = "mmap";
    disk;
    blocks;
    read = (fun ~attempt:_ b -> Backend.Data (load st b));
    write = (fun b cells -> store st b (Some cells));
    cost = 1;
    max_retries = 0;
    peek = (fun b -> load st b);
    poke = (fun b payload -> store st b payload);
    dump = (fun () -> Array.init blocks (fun b -> load st b));
    exists = (fun b -> bit_get st.written b);
    barrier =
      (fun () ->
        if st.dirty then begin
          msync_stub st.map;
          st.dirty <- false
        end) }
