/* C stubs for the real-I/O backends: positional read/write on
   Bigarray block buffers, the O_DIRECT toggle, buffer-address probing
   for alignment, and msync for the mmap barrier.

   OCaml's Unix library has no pread/pwrite, and going through a seek
   + read pair would both race and force an intermediate Bytes copy;
   these stubs work straight on the Bigarray data pointer. */

#define _GNU_SOURCE
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <unistd.h>

#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/unixsupport.h>

/* pread/pwrite loops: retry EINTR and partial transfers; return the
   byte count actually moved (short only at end-of-file for reads —
   the OCaml side treats a short count on a preallocated file as a
   hard error). */

CAMLprim value caml_pdm_io_pread(value vfd, value vbuf, value vpos,
                                 value vlen, value voff)
{
  CAMLparam5(vfd, vbuf, vpos, vlen, voff);
  char *base = (char *)Caml_ba_data_val(vbuf);
  int fd = Int_val(vfd);
  long pos = Long_val(vpos);
  long len = Long_val(vlen);
  long off = Long_val(voff);
  long done = 0;
  while (done < len) {
    ssize_t n = pread(fd, base + pos + done, len - done, off + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      uerror("pread", Nothing);
    }
    if (n == 0) break; /* end of file */
    done += n;
  }
  CAMLreturn(Val_long(done));
}

CAMLprim value caml_pdm_io_pwrite(value vfd, value vbuf, value vpos,
                                  value vlen, value voff)
{
  CAMLparam5(vfd, vbuf, vpos, vlen, voff);
  char *base = (char *)Caml_ba_data_val(vbuf);
  int fd = Int_val(vfd);
  long pos = Long_val(vpos);
  long len = Long_val(vlen);
  long off = Long_val(voff);
  long done = 0;
  while (done < len) {
    ssize_t n = pwrite(fd, base + pos + done, len - done, off + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      uerror("pwrite", Nothing);
    }
    if (n == 0) break;
    done += n;
  }
  CAMLreturn(Val_long(done));
}

/* Try to toggle O_DIRECT on an open descriptor. Returns true on
   success; false when the flag is unsupported (macOS, tmpfs, many
   CI filesystems) so callers can fall back to buffered I/O. */
CAMLprim value caml_pdm_io_set_direct(value vfd, value von)
{
#ifdef O_DIRECT
  int fd = Int_val(vfd);
  int flags = fcntl(fd, F_GETFL);
  if (flags < 0) return Val_false;
  if (Bool_val(von)) flags |= O_DIRECT;
  else flags &= ~O_DIRECT;
  if (fcntl(fd, F_SETFL, flags) < 0) return Val_false;
  return Val_true;
#else
  (void)vfd;
  (void)von;
  return Val_false;
#endif
}

/* Address of a Bigarray's data, for carving sector-aligned slices
   out of an over-allocated buffer (O_DIRECT requires alignment). */
CAMLprim value caml_pdm_io_buf_addr(value vbuf)
{
  return caml_copy_nativeint((intnat)Caml_ba_data_val(vbuf));
}

/* Flush a shared file mapping to stable storage (mmap barrier).
   The mapping's base address is page-aligned by construction. */
CAMLprim value caml_pdm_io_msync(value vbuf)
{
  CAMLparam1(vbuf);
  char *base = (char *)Caml_ba_data_val(vbuf);
  long len = caml_ba_byte_size(Caml_ba_array_val(vbuf));
  if (len > 0 && msync(base, len, MS_SYNC) < 0) uerror("msync", Nothing);
  CAMLreturn(Val_unit);
}
