(* Zero-copy block codec: the on-disk image of one PDM block.

   Layout (little-endian, fixed offsets so every field can be encoded
   or decoded in place — no intermediate Bytes):

     bytes 0..7     word0: state magic (0 = absent, MAGIC = present)
     bytes 8..15    word1: slot count (sanity-checked on decode)
     bytes 16..     presence bitmap, ceil(slots/8) bytes
     then           slots x 8-byte two's-complement cells
     padding        up to the next 512-byte sector (O_DIRECT unit)

   Absent cells still occupy their 8 bytes (zeroed) so every cell has
   a fixed offset; a never-written block is all zeros, which is
   exactly what a freshly preallocated (ftruncated) file reads as. *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external buf_addr : buf -> nativeint = "caml_pdm_io_buf_addr"

let sector = 512

(* "PDMBLK1\000" as a little-endian word. *)
let magic = 0x00314b4c424d4450

let header_bytes = 16

let bitmap_bytes ~slots = (slots + 7) / 8

let bytes_per_block ~slots =
  if slots < 1 then invalid_arg "Block_codec.bytes_per_block: slots >= 1";
  let raw = header_bytes + bitmap_bytes ~slots + (8 * slots) in
  (raw + sector - 1) / sector * sector

let alloc len = Bigarray.Array1.create Bigarray.Char Bigarray.c_layout len

(* A buffer whose data pointer is [align]-aligned: over-allocate and
   carve the aligned slice. O_DIRECT rejects unaligned user buffers. *)
let aligned ?(align = sector) len =
  let raw = alloc (len + align) in
  let addr = Nativeint.to_int (buf_addr raw) in
  let shift = (align - (addr mod align)) mod align in
  Bigarray.Array1.sub raw shift len

let get_word buf off =
  let b i = Char.code (Bigarray.Array1.get buf (off + i)) in
  b 0
  lor (b 1 lsl 8)
  lor (b 2 lsl 16)
  lor (b 3 lsl 24)
  lor (b 4 lsl 32)
  lor (b 5 lsl 40)
  lor (b 6 lsl 48)
  lor (b 7 lsl 56)

let set_word buf off v =
  for i = 0 to 7 do
    Bigarray.Array1.set buf (off + i)
      (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
  done

let written buf ~off = get_word buf off = magic

let erase buf ~off ~slots =
  Bigarray.Array1.fill
    (Bigarray.Array1.sub buf off (bytes_per_block ~slots))
    '\000'

let encode buf ~off ~slots payload =
  match payload with
  | None -> erase buf ~off ~slots
  | Some cells ->
    if Array.length cells <> slots then
      invalid_arg "Block_codec.encode: payload has wrong slot count";
    set_word buf off magic;
    set_word buf (off + 8) slots;
    let bmp = off + header_bytes in
    let data = bmp + bitmap_bytes ~slots in
    Bigarray.Array1.fill
      (Bigarray.Array1.sub buf bmp (bitmap_bytes ~slots))
      '\000';
    for i = 0 to slots - 1 do
      match cells.(i) with
      | None -> set_word buf (data + (8 * i)) 0
      | Some v ->
        let bi = bmp + (i lsr 3) in
        let bits = Char.code (Bigarray.Array1.get buf bi) in
        Bigarray.Array1.set buf bi
          (Char.unsafe_chr (bits lor (1 lsl (i land 7))));
        set_word buf (data + (8 * i)) v
    done

let decode buf ~off ~slots =
  if not (written buf ~off) then None
  else begin
    let stored = get_word buf (off + 8) in
    if stored <> slots then
      failwith
        (Printf.sprintf
           "Block_codec.decode: stored slot count %d, expected %d \
            (geometry mismatch with an existing file?)"
           stored slots);
    let bmp = off + header_bytes in
    let data = bmp + bitmap_bytes ~slots in
    let cells = Array.make slots None in
    for i = 0 to slots - 1 do
      let bits = Char.code (Bigarray.Array1.get buf (bmp + (i lsr 3))) in
      if bits land (1 lsl (i land 7)) <> 0 then
        cells.(i) <- Some (get_word buf (data + (8 * i)))
    done;
    Some cells
  end
