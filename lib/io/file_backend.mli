(** File-per-disk storage backend: one preallocated file per disk,
    positional I/O, optional O_DIRECT.

    Block [b] lives at byte offset [b * bytes_per_block] of
    [dir/disk-NNNN.pdm]; every counted read or write moves exactly one
    sector-padded block image through a single reused aligned buffer
    (the only per-read allocation is the decoded payload array the
    backend contract requires). [exists] is answered from an in-memory
    written bitmap that is rebuilt from the on-disk block headers when
    an existing file is reopened — which is what makes crash/reopen
    recovery work: a new process over the same directory sees exactly
    the blocks that reached the file. [barrier] is [fsync], skipped
    when no write happened since the last one. *)

val create :
  dir:string ->
  disk:int ->
  blocks:int ->
  slots:int ->
  ?direct:bool ->
  unit ->
  int Pdm_sim.Backend.t
(** Open (or create) this disk's file under [dir] — the directory must
    exist — preallocated to [blocks] images of [slots] cells each, and
    rebuild the written bitmap from the headers found there. [direct]
    requests O_DIRECT (best-effort; the backend's [name] reports
    ["file:direct"] only when it actually engaged). Geometry must
    match any existing file: decoding a block written with a different
    slot count raises [Failure]. *)

val file_name : disk:int -> string
(** Name of a disk's file inside its directory (["disk-NNNN.pdm"]). *)
