(* File-per-disk storage backend.

   One preallocated file holds this disk's blocks at fixed offsets
   (block b at byte b * bytes_per_block). An in-memory written bitmap
   — rebuilt from the block headers whenever an existing file is
   reopened — answers the machine's uncounted "was this ever written"
   queries without touching the platter; the counted read/write paths
   move exactly one sector-padded block image per call, encoded and
   decoded in place in a single reused aligned buffer. *)

module Backend = Pdm_sim.Backend

type state = {
  file : Raw_file.t;
  buf : Block_codec.buf;  (* one block image, sector-aligned, reused *)
  bpb : int;
  slots : int;
  blocks : int;
  written : Bytes.t;  (* bit per block *)
  mutable dirty : bool;  (* writes since the last fsync *)
}

let bit_get bm b = Char.code (Bytes.get bm (b lsr 3)) land (1 lsl (b land 7)) <> 0

let bit_set bm b v =
  let i = b lsr 3 in
  let bits = Char.code (Bytes.get bm i) in
  let mask = 1 lsl (b land 7) in
  Bytes.set bm i (Char.chr (if v then bits lor mask else bits land lnot mask))

(* Reopening an existing file: the headers on disk are authoritative.
   A fresh (just-preallocated) file is all zeros, so the same scan
   yields an all-clear bitmap. *)
let scan st =
  for b = 0 to st.blocks - 1 do
    Raw_file.pread st.file st.buf ~pos:0 ~len:Block_codec.sector
      ~off:(b * st.bpb);
    if Block_codec.written st.buf ~off:0 then bit_set st.written b true
  done

let load st b =
  if not (bit_get st.written b) then None
  else begin
    Raw_file.pread st.file st.buf ~pos:0 ~len:st.bpb ~off:(b * st.bpb);
    match Block_codec.decode st.buf ~off:0 ~slots:st.slots with
    | Some _ as payload -> payload
    | None ->
      failwith
        (Printf.sprintf "%s: block %d marked written but absent on disk"
           (Raw_file.path st.file) b)
  end

let store st b payload =
  Block_codec.encode st.buf ~off:0 ~slots:st.slots payload;
  Raw_file.pwrite st.file st.buf ~pos:0 ~len:st.bpb ~off:(b * st.bpb);
  bit_set st.written b (payload <> None);
  st.dirty <- true

let file_name ~disk = Printf.sprintf "disk-%04d.pdm" disk

let create ~dir ~disk ~blocks ~slots ?(direct = false) () =
  if blocks < 1 then invalid_arg "File_backend.create: blocks >= 1";
  let bpb = Block_codec.bytes_per_block ~slots in
  let file =
    Raw_file.openfile
      ~path:(Filename.concat dir (file_name ~disk))
      ~size:(blocks * bpb) ~direct ()
  in
  let st =
    { file; buf = Block_codec.aligned bpb; bpb; slots; blocks;
      written = Bytes.make ((blocks + 7) / 8) '\000'; dirty = false }
  in
  scan st;
  { Backend.name = (if Raw_file.direct file then "file:direct" else "file");
    disk;
    blocks;
    read =
      (fun ~attempt:_ b -> Backend.Data (load st b));
    write = (fun b cells -> store st b (Some cells));
    cost = 1;
    max_retries = 0;
    peek = (fun b -> load st b);
    poke = (fun b payload -> store st b payload);
    dump = (fun () -> Array.init blocks (fun b -> load st b));
    exists = (fun b -> bit_get st.written b);
    barrier =
      (fun () ->
        if st.dirty then begin
          Raw_file.fsync st.file;
          st.dirty <- false
        end) }
