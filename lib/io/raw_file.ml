(* One preallocated disk file with positional block I/O.

   The only Unix surface of the storage subsystem: open/preallocate,
   pread/pwrite (C stubs — OCaml's Unix has neither), fsync, close.
   pdm-lint confines Unix.* to this library's audited allowlist. *)

external pread_stub :
  Unix.file_descr -> Block_codec.buf -> int -> int -> int -> int
  = "caml_pdm_io_pread"

external pwrite_stub :
  Unix.file_descr -> Block_codec.buf -> int -> int -> int -> int
  = "caml_pdm_io_pwrite"

external set_direct_stub : Unix.file_descr -> bool -> bool
  = "caml_pdm_io_set_direct"

type t = {
  path : string;
  fd : Unix.file_descr;
  size : int;
  direct : bool;  (* O_DIRECT actually engaged (not merely requested) *)
  mutable closed : bool;
}

let wrap path op f =
  try f () with
  | Unix.Unix_error (e, _, _) ->
    failwith
      (Printf.sprintf "%s: %s failed: %s" path op (Unix.error_message e))

let openfile ~path ~size ?(direct = false) () =
  if size < 0 then invalid_arg "Raw_file.openfile: size must be >= 0";
  let fd =
    wrap path "open" (fun () ->
        Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  in
  (* Preallocate: reads inside [size] then see zeros — the codec's
     absent state — even past what was ever written. *)
  wrap path "ftruncate" (fun () -> Unix.ftruncate fd size);
  (* O_DIRECT is best-effort: unsupported filesystems (tmpfs, many CI
     mounts) or kernels refuse the flag and we stay buffered. *)
  let direct = direct && set_direct_stub fd true in
  let t = { path; fd; size; direct; closed = false } in
  Gc.finalise (fun t -> if not t.closed then (try Unix.close t.fd with _ -> ()))
    t;
  t

let path t = t.path
let size t = t.size
let direct t = t.direct

let fd t =
  if t.closed then failwith (t.path ^ ": file is closed");
  t.fd

let check_range t ~len ~off op =
  if t.closed then failwith (t.path ^ ": file is closed");
  if len < 0 || off < 0 || off + len > t.size then
    invalid_arg ("Raw_file." ^ op ^ ": range outside the preallocated file")

let pread t buf ~pos ~len ~off =
  check_range t ~len ~off "pread";
  let n = wrap t.path "pread" (fun () -> pread_stub t.fd buf pos len off) in
  if n <> len then
    failwith
      (Printf.sprintf "%s: short read (%d of %d bytes at %d)" t.path n len off)

let pwrite t buf ~pos ~len ~off =
  check_range t ~len ~off "pwrite";
  let n = wrap t.path "pwrite" (fun () -> pwrite_stub t.fd buf pos len off) in
  if n <> len then
    failwith
      (Printf.sprintf "%s: short write (%d of %d bytes at %d)" t.path n len
         off)

let fsync t =
  if t.closed then failwith (t.path ^ ": file is closed");
  wrap t.path "fsync" (fun () -> Unix.fsync t.fd)

let close t =
  if not t.closed then begin
    t.closed <- true;
    wrap t.path "close" (fun () -> Unix.close t.fd)
  end
