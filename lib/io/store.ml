(* Front door of the storage subsystem: backend kinds, scratch
   directories and the factories machines consume.

   A [spec] says what storage a machine should sit on; [factory]
   turns it into the geometry-blind factory Pdm.create consumes. With
   no explicit directory each machine gets a fresh scratch directory
   (removed at process exit); with [~dir] the files persist — that is
   how crash tests reopen a "dead process's" state. [install] puts
   the kinds into the machine layer's registry for --backend flags. *)

module Backend_registry = Pdm_sim.Backend_registry

type kind = Mem | File | Mmap

let kind_to_string = function Mem -> "mem" | File -> "file" | Mmap -> "mmap"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "mem" -> Ok Mem
  | "file" -> Ok File
  | "mmap" -> Ok Mmap
  | other -> Error (Printf.sprintf "unknown backend %S (mem|file|mmap)" other)

let all_kinds = [ "mem"; "file"; "mmap" ]

type spec = { kind : kind; dir : string option; direct : bool }

let spec ?dir ?(direct = false) kind = { kind; dir; direct }

(* --- scratch directories ------------------------------------------ *)

let created : string list ref = ref []

let cleanup_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let cleanup_at_exit () =
  let dirs = !created in
  created := [];
  List.iter (fun d -> try cleanup_dir d with Sys_error _ -> ()) dirs

let exit_hook_installed = ref false

let counter = ref 0

let fresh_dir ?(prefix = "pdm-io") () =
  if not !exit_hook_installed then begin
    exit_hook_installed := true;
    at_exit cleanup_at_exit
  end;
  let base = Filename.get_temp_dir_name () in
  let rec try_next () =
    incr counter;
    let dir =
      Filename.concat base
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then try_next ()
    else begin
      Sys.mkdir dir 0o700;
      created := dir :: !created;
      dir
    end
  in
  try_next ()

let with_dir ?prefix f =
  let dir = fresh_dir ?prefix () in
  Fun.protect ~finally:(fun () -> try cleanup_dir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* --- factories ---------------------------------------------------- *)

let ensure_dir spec =
  match spec.dir with
  | Some d ->
    if not (Sys.file_exists d) then Sys.mkdir d 0o700;
    d
  | None -> fresh_dir ()

let factory spec : int Pdm_sim.Backend.factory =
 fun ~blocks ~slots ->
  match spec.kind with
  | Mem -> None
  | File ->
    (* resolved here, once per machine: distinct machines sharing one
       spec must not collide in one scratch directory *)
    let dir = ensure_dir spec in
    Some
      (fun disk ->
        File_backend.create ~dir ~disk ~blocks ~slots ~direct:spec.direct ())
  | Mmap ->
    let dir = ensure_dir spec in
    Some (fun disk -> Mmap_backend.create ~dir ~disk ~blocks ~slots ())

let factory_of_string s =
  Result.map (fun kind -> factory (spec kind)) (kind_of_string s)

(* --- registry ----------------------------------------------------- *)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Backend_registry.register ~kind:"file"
      ~doc:"preallocated file per disk, pread/pwrite + fsync barriers"
      (fun () -> factory (spec File));
    Backend_registry.register ~kind:"mmap"
      ~doc:"shared file mapping per disk, in-place codec + msync barriers"
      (fun () -> factory (spec Mmap))
  end
