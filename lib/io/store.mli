(** Front door of the real-I/O storage subsystem: backend kinds,
    scratch directories and the factories machines consume.

    A {!spec} says what storage a machine should sit on; {!factory}
    turns it into the geometry-blind {!Pdm_sim.Backend.factory} that
    [Pdm.create ?factory] consumes. With no explicit directory every
    machine gets a fresh scratch directory under the system temp dir,
    removed at process exit; with [~dir] the files persist across
    machines and processes — which is how crash tests reopen a "dead
    process's" state. *)

type kind = Mem | File | Mmap

val kind_to_string : kind -> string

val kind_of_string : string -> (kind, string) result
(** Case-insensitive; the [Error] lists the accepted names. *)

val all_kinds : string list
(** [["mem"; "file"; "mmap"]] — for CLI doc strings. *)

type spec = private { kind : kind; dir : string option; direct : bool }

val spec : ?dir:string -> ?direct:bool -> kind -> spec
(** [dir]: directory holding the disk files (created if missing;
    default a fresh scratch directory per machine). [direct] (default
    false): request O_DIRECT on file backends (best-effort). *)

val factory : spec -> int Pdm_sim.Backend.factory
(** The factory for a spec. [Mem] answers [None] (the machine uses
    its default memory disks), so code can thread one optional factory
    everywhere and treat "mem" uniformly. *)

val factory_of_string : string -> (int Pdm_sim.Backend.factory, string) result
(** [factory_of_string s] = [factory (spec kind)] for a kind name —
    the one-liner CLI front ends want. *)

val fresh_dir : ?prefix:string -> unit -> string
(** Create a fresh scratch directory (default prefix ["pdm-io"]),
    registered for removal at process exit. *)

val with_dir : ?prefix:string -> (string -> 'a) -> 'a
(** Run with a fresh scratch directory and remove it afterwards even
    on exceptions — the cleanup guard tests use so failures don't
    leak files. *)

val cleanup_dir : string -> unit
(** Remove a directory's regular files and the directory itself.
    No-op when it does not exist. *)

val install : unit -> unit
(** Register the ["file"] and ["mmap"] kinds in
    {!Pdm_sim.Backend_registry} (idempotent). Front ends call this
    once before resolving a [--backend] flag. *)
