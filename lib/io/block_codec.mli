(** Zero-copy codec between PDM blocks ([int option array] payloads)
    and their on-disk byte image.

    The image is little-endian with fixed offsets — a 16-byte header
    (state magic + slot count), a presence bitmap, then one 8-byte
    two's-complement word per cell — rounded up to the 512-byte sector
    so every block is a legal O_DIRECT transfer unit. Encode and
    decode work directly on a [Bigarray] slice: the only allocation on
    a decode is the resulting payload array itself.

    A never-written block is all zeros, which is exactly what a
    freshly preallocated (ftruncated) file reads as — so "absent" needs
    no separate metadata and a file reopened after a crash declares
    its own contents. *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Byte buffers all real-I/O paths share: char Bigarrays (c_layout)
    whose data lives outside the OCaml heap, so C stubs and mmap can
    address it directly. *)

val sector : int
(** The O_DIRECT transfer unit (512). Block images are padded to a
    multiple of this; aligned buffers default to this alignment. *)

val bytes_per_block : slots:int -> int
(** On-disk bytes one block of [slots] cells occupies (sector-padded).
    A disk file holds [blocks * bytes_per_block ~slots] bytes. *)

val alloc : int -> buf
(** Fresh zeroed buffer of the given byte length. *)

val aligned : ?align:int -> int -> buf
(** Fresh buffer whose data pointer is [align]-aligned (default
    {!sector}) — O_DIRECT rejects unaligned user buffers. *)

val encode : buf -> off:int -> slots:int -> int option array option -> unit
(** [encode buf ~off ~slots payload] writes the block image at byte
    offset [off]. [None] erases the block (all zeros — the absent
    state). Raises [Invalid_argument] when the payload length is not
    [slots]. *)

val decode : buf -> off:int -> slots:int -> int option array option
(** Read the block image at [off]: [None] when absent, otherwise a
    fresh payload array. Raises [Failure] when the stored slot count
    disagrees with [slots] (an existing file with the wrong
    geometry). *)

val written : buf -> off:int -> bool
(** Does the image at [off] hold a written block? Header-only — does
    not decode the cells. *)
