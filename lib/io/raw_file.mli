(** One preallocated disk file with positional block I/O.

    The storage subsystem's only Unix surface: open/preallocate,
    [pread]/[pwrite] (C stubs — OCaml's Unix library has neither, and
    a seek+read pair would force an intermediate [Bytes] copy),
    [fsync] and [close]. All transfers go straight between the file
    and a {!Block_codec.buf} data pointer. *)

type t

val openfile : path:string -> size:int -> ?direct:bool -> unit -> t
(** Open (creating if needed) and preallocate to exactly [size] bytes,
    so reads anywhere inside see zeros — the codec's absent state.
    [direct] requests O_DIRECT; the flag is best-effort and silently
    falls back to buffered I/O where unsupported (check {!direct}).
    The descriptor is closed by a GC finaliser if {!close} is never
    called. Raises [Failure] on I/O errors. *)

val path : t -> string
val size : t -> int

val direct : t -> bool
(** Whether O_DIRECT actually engaged (not merely requested). *)

val fd : t -> Unix.file_descr
(** The open descriptor (for [Unix.map_file]). Raises [Failure] after
    {!close}. *)

val pread : t -> Block_codec.buf -> pos:int -> len:int -> off:int -> unit
(** Read exactly [len] bytes at file offset [off] into [buf] starting
    at [pos]. Retries interrupted and partial transfers; a genuinely
    short read (impossible inside a preallocated file) raises
    [Failure]. *)

val pwrite : t -> Block_codec.buf -> pos:int -> len:int -> off:int -> unit
(** Write exactly [len] bytes at file offset [off] from [buf] starting
    at [pos]. Same retry/short-transfer contract as {!pread}. *)

val fsync : t -> unit
(** Durability barrier: returns once every completed write on this
    file is on stable storage. *)

val close : t -> unit
(** Close the descriptor (idempotent). The file itself remains. *)
