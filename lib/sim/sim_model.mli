(** The pure reference dictionary the differential checker compares
    every system under test against.

    A persistent [Map.Make(Int)] — no blocks, no disks, no journal —
    holding exactly the record set a correct dictionary must answer
    with. It also remembers every key ever touched, so the post-run
    sweep knows the full set of keys whose answers are constrained. *)

type t

val create : unit -> t

val of_data : (int * Bytes.t) array -> t
(** A model pre-loaded with static data. Payloads are copied. *)

val find : t -> int -> Bytes.t option
(** A fresh copy — callers may mutate the result freely. *)

val mem : t -> int -> bool
val insert : t -> int -> Bytes.t -> unit

val delete : t -> int -> bool
(** Whether the key was present (the value a dictionary's [delete]
    must report). *)

val size : t -> int

val touched_keys : t -> int list
(** Every key any applied op ever mentioned, ascending — the sweep
    domain. *)

val apply :
  t ->
  Pdm_workload.Trace.op ->
  [ `Found of Bytes.t option | `Inserted | `Deleted of bool ]
(** Apply one op, returning what a correct dictionary must answer. *)

val mutates : t -> Pdm_workload.Trace.op -> bool
(** Whether the op would change the stored set in the model's current
    state — [Insert] always, [Delete] of a present key; the predicate
    the crash-schedule enumerator uses to find journaled updates. *)
