module J = Sim_json
module W = Pdm_workload.Trace

type header = {
  config : Sim_config.t;
  schedule : Sim_schedule.t;
  op_count : int;
  expected : string list;
}

let version = 1

let op_to_json = function
  | W.Lookup k -> J.Obj [ ("op", J.String "lookup"); ("key", J.Int k) ]
  | W.Insert (k, v) ->
    J.Obj
      [ ("op", J.String "insert"); ("key", J.Int k);
        ("value", J.String (J.hex_of_bytes v)) ]
  | W.Delete k -> J.Obj [ ("op", J.String "delete"); ("key", J.Int k) ]

let op_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* kind = Option.bind (J.member "op" j) J.get_string in
  let* key = Option.bind (J.member "key" j) J.get_int in
  match kind with
  | "lookup" -> Some (W.Lookup key)
  | "delete" -> Some (W.Delete key)
  | "insert" ->
    let* hex = Option.bind (J.member "value" j) J.get_string in
    let* v = J.bytes_of_hex hex in
    Some (W.Insert (key, v))
  | _ -> None

let expected_of_report (r : Sim_run.report) =
  List.map
    (fun d -> J.to_string (Sim_run.divergence_to_json d))
    r.Sim_run.divergences

let write ~path (r : Sim_run.report) ~ops =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let header =
        J.Obj
          [ ("kind", J.String "pdm-sim-repro"); ("version", J.Int version);
            ("config", Sim_config.to_json r.Sim_run.config);
            ("schedule", Sim_schedule.to_json r.Sim_run.schedule);
            ("ops", J.Int (Array.length ops));
            ("expected",
             J.List
               (List.map
                  (fun d -> Sim_run.divergence_to_json d)
                  r.Sim_run.divergences)) ]
      in
      output_string oc (J.to_string header);
      output_char oc '\n';
      Array.iter
        (fun op ->
          output_string oc (J.to_string (op_to_json op));
          output_char oc '\n')
        ops)

let load ~path =
  let ( let* ) r f = Result.bind r f in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let* first =
        match input_line ic with
        | line -> Ok line
        | exception End_of_file -> Error "empty repro file"
      in
      let* hdr = J.of_string first in
      let* () =
        match Option.bind (J.member "kind" hdr) J.get_string with
        | Some "pdm-sim-repro" -> Ok ()
        | _ -> Error "not a pdm-sim-repro file"
      in
      let* () =
        match Option.bind (J.member "version" hdr) J.get_int with
        | Some v when v = version -> Ok ()
        | Some v -> Error (Printf.sprintf "unsupported repro version %d" v)
        | None -> Error "repro header has no version"
      in
      let* config =
        match J.member "config" hdr with
        | Some c -> Sim_config.of_json c
        | None -> Error "repro header has no config"
      in
      let* schedule =
        match J.member "schedule" hdr with
        | Some s -> Sim_schedule.of_json s
        | None -> Error "repro header has no schedule"
      in
      let* op_count =
        match Option.bind (J.member "ops" hdr) J.get_int with
        | Some n when n >= 0 -> Ok n
        | _ -> Error "repro header has no op count"
      in
      let expected =
        match J.member "expected" hdr with
        | Some (J.List l) -> List.map J.to_string l
        | _ -> []
      in
      let ops = ref [] in
      let* () =
        let rec loop i =
          if i = op_count then Ok ()
          else
            match input_line ic with
            | exception End_of_file ->
              Error
                (Printf.sprintf "repro truncated: %d of %d ops" i op_count)
            | "" -> loop i
            | line ->
              let* j = J.of_string line in
              (match op_of_json j with
               | Some op ->
                 ops := op :: !ops;
                 loop (i + 1)
               | None -> Error ("malformed op line: " ^ line))
        in
        loop 0
      in
      Ok ({ config; schedule; op_count; expected },
          Array.of_list (List.rev !ops)))

(* A replay is bit-identical when the re-run's divergence list
   serializes to exactly the recorded strings — same indices, kinds
   and detail text, in the same order. *)
let replay ~path =
  let ( let* ) r f = Result.bind r f in
  let* header, ops = load ~path in
  let report =
    Sim_run.run header.config header.schedule (Array.to_seq ops)
  in
  Ok (header, report, expected_of_report report = header.expected)
