module M = Map.Make (Int)
module W = Pdm_workload.Trace

type t = { mutable map : Bytes.t M.t; mutable touched : unit M.t }

let create () = { map = M.empty; touched = M.empty }

let of_data data =
  let t = create () in
  Array.iter
    (fun (k, v) ->
      t.map <- M.add k (Bytes.copy v) t.map;
      t.touched <- M.add k () t.touched)
    data;
  t

let find t k = Option.map Bytes.copy (M.find_opt k t.map)

let mem t k = M.mem k t.map

let insert t k v =
  t.map <- M.add k (Bytes.copy v) t.map;
  t.touched <- M.add k () t.touched

let delete t k =
  let present = M.mem k t.map in
  if present then t.map <- M.remove k t.map;
  t.touched <- M.add k () t.touched;
  present

let size t = M.cardinal t.map

let touched_keys t = List.map fst (M.bindings t.touched)

let apply t = function
  | W.Lookup k ->
    t.touched <- M.add k () t.touched;
    `Found (find t k)
  | W.Insert (k, v) ->
    insert t k v;
    `Inserted
  | W.Delete k -> `Deleted (delete t k)

let mutates t = function
  | W.Lookup _ -> false
  | W.Insert _ -> true
  | W.Delete k -> mem t k
