type result = {
  ops : Pdm_workload.Trace.op array;
  schedule : Sim_schedule.t;
  report : Sim_run.report;
  runs_used : int;
}

(* Drop the ops marked false and re-pin schedule events onto the
   surviving indices; an event pinned to a dropped op is dropped with
   it (its trigger no longer exists). *)
let remap keep ops schedule =
  let n = Array.length keep in
  let new_index = Array.make n (-1) in
  let kept = ref 0 in
  Array.iteri
    (fun i k ->
      if k then begin
        new_index.(i) <- !kept;
        incr kept
      end)
    keep;
  let ops' =
    Array.of_list
      (List.filteri (fun i _ -> keep.(i)) (Array.to_list ops))
  in
  let schedule' =
    List.filter_map
      (fun ev ->
        let at = Sim_schedule.at ev in
        if at >= n then Some (Sim_schedule.with_at ev !kept)
        else if keep.(at) then Some (Sim_schedule.with_at ev new_index.(at))
        else None)
      schedule
  in
  (ops', schedule')

let shrink ?(budget = 800) cfg ops schedule =
  let runs = ref 0 in
  let attempt ops' schedule' =
    if !runs >= budget then None
    else begin
      incr runs;
      let r = Sim_run.run cfg schedule' (Array.to_seq ops') in
      if Sim_run.ok r then None else Some r
    end
  in
  match attempt ops (Sim_schedule.canonical schedule) with
  | None -> None
  | Some report0 ->
    let best_ops = ref ops
    and best_sched = ref (Sim_schedule.canonical schedule)
    and best_report = ref report0 in
    let commit ops' sched' r =
      best_ops := ops';
      best_sched := sched';
      best_report := r
    in
    (* Phase 1 — truncate: nothing after the first divergence can be
       needed to reproduce it. *)
    let truncate () =
      match (!best_report).Sim_run.divergences with
      | { Sim_run.at; _ } :: _ when at + 1 < Array.length !best_ops ->
        let keep =
          Array.init (Array.length !best_ops) (fun i -> i <= at)
        in
        let ops', sched' = remap keep !best_ops !best_sched in
        (match attempt ops' sched' with
         | Some r -> commit ops' sched' r
         | None -> ())
      | _ -> ()
    in
    truncate ();
    (* Phase 2 — ddmin over op chunks of halving size. *)
    let chunk = ref (max 1 (Array.length !best_ops / 2)) in
    while !chunk >= 1 && !runs < budget do
      let progressed = ref true in
      while !progressed && !runs < budget do
        progressed := false;
        let n = Array.length !best_ops in
        let start = ref 0 in
        while !start < n && !runs < budget do
          let stop = min n (!start + !chunk) in
          let keep = Array.init n (fun i -> i < !start || i >= stop) in
          (match remap keep !best_ops !best_sched with
           | ops', sched' ->
             (match attempt ops' sched' with
              | Some r ->
                commit ops' sched' r;
                progressed := true;
                (* indices shifted: restart this chunk pass *)
                start := n
              | None -> start := stop))
        done
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    truncate ();
    (* Phase 3 — drop schedule events one at a time. *)
    let again = ref true in
    while !again && !runs < budget do
      again := false;
      let evs = !best_sched in
      List.iteri
        (fun i _ ->
          if not !again && !runs < budget then begin
            let sched' = List.filteri (fun j _ -> j <> i) evs in
            match attempt !best_ops sched' with
            | Some r ->
              commit !best_ops sched' r;
              again := true
            | None -> ()
          end)
        evs
    done;
    Some
      { ops = !best_ops; schedule = !best_sched; report = !best_report;
        runs_used = !runs }
