(** Systematic crash-schedule and fault-schedule exploration.

    For one config and one generated op stream, enumerate the
    bounded single-mechanism schedule space:

    - the clean (no-fault) run;
    - for journaled configs, a crash at {e every} journal crash point
      ({!Sim_schedule.all_points}) of {e every} update that mutates
      the stored set — the bounded-exhaustive core;
    - for replicated configs, disk kills at sampled op indices, alone
      and followed by a scrub;
    - for replicated or checksummed configs, stored-block damage at
      sampled indices, alone and followed by a scrub;
    - for cluster configs with a transport ([net]), message-level
      faults: pinned request drops and write duplications at sampled
      indices on every shard, plus symmetric and asymmetric partitions
      spanning several op windows — including one opening just before
      an armed migration, so the router loses a shard mid-plan;

    dedupe it, and run every schedule through the differential
    checker — or, when the space exceeds the budget, a seeded
    deterministic sample of it (the clean run always included). The
    first failure found is handed to the shrinker. Everything is a
    pure function of the config (seed included) and the knobs, so two
    runs of the same exploration agree schedule for schedule. *)

type outcome = {
  config : Sim_config.t;
  ops : Pdm_workload.Trace.op array;  (** the generated stream *)
  total_space : int;  (** distinct schedules in the full space *)
  explored : int;  (** schedules actually run (≤ budget) *)
  clean : int;  (** explored schedules with zero divergences *)
  divergent : Sim_run.report list;  (** first few failing reports *)
  shrunk : Sim_shrink.result option;
      (** minimized first failure, when any failed *)
}

val mutating_indices : Pdm_workload.Trace.op array -> int list
(** Indices whose op changes the stored set when the stream is played
    from empty — the crash-injection targets. Exposed for tests. *)

val explore :
  ?budget:int ->
  ?max_divergent:int ->
  ?shrink_budget:int ->
  ?count:int ->
  ?dist:Sim_gen.dist ->
  ?max_partial:int ->
  Sim_config.t ->
  outcome
(** Defaults: [budget = 600] schedules, [count = 128] ops, uniform
    keys, torn-write depths 1..2, up to 5 stored failing reports,
    shrink budget 800 runs. *)
