module J = Sim_json

type sut = Basic | One_probe_static | One_probe_dynamic | Dynamic_cascade
         | Cluster

type t = {
  sut : sut;
  engine : bool;
  cache_blocks : int;
  journaled : bool;
  replicas : int;
  spares : int;
  integrity : bool;
  buggy : bool;
  transient : float;
  straggle : int;
  block_words : int;
  universe : int;
  capacity : int;
  value_bytes : int;
  seed : int;
  shards : int;  (* cluster only: shard count (0 elsewhere) *)
  migrate_at : int;  (* cluster only: add a shard before op #n (-1 = never) *)
  net : bool;  (* cluster only: route exchanges through the transport *)
  net_drop : float;  (* per-message loss probability *)
  net_dup : float;  (* per-delivered-write duplication probability *)
  net_reorder : int;  (* duplicate redelivery window bound *)
  net_hedge : bool;  (* hedged reads (fail over after 1 miss) *)
  backend : string;  (* storage kind under the machine: mem|file|mmap *)
}

let sut_to_string = function
  | Basic -> "basic"
  | One_probe_static -> "static"
  | One_probe_dynamic -> "dynamic"
  | Dynamic_cascade -> "cascade"
  | Cluster -> "cluster"

let sut_of_string s =
  match String.lowercase_ascii s with
  | "basic" -> Some Basic
  | "static" | "one_probe_static" -> Some One_probe_static
  | "dynamic" | "one_probe_dynamic" -> Some One_probe_dynamic
  | "cascade" | "dynamic_cascade" -> Some Dynamic_cascade
  | "cluster" -> Some Cluster
  | _ -> None

let default sut =
  { sut; engine = false; cache_blocks = 0; journaled = false; replicas = 1;
    spares = 0; integrity = false; buggy = false; transient = 0.0;
    straggle = 1; block_words = 32; universe = 1 lsl 14; capacity = 96;
    value_bytes = 8; seed = 1; shards = (if sut = Cluster then 3 else 0);
    migrate_at = -1; net = false; net_drop = 0.05; net_dup = 0.05;
    net_reorder = 3; net_hedge = true; backend = "mem" }

let is_static cfg = cfg.sut = One_probe_static

(* The cluster's shards are journaled one-probe-dynamic dictionaries;
   its own engines sit in front of them, so the [engine] flag (an
   external engine wrapper) never applies. *)
let supports_journal cfg =
  (cfg.sut = One_probe_dynamic || cfg.sut = Dynamic_cascade
   || cfg.sut = Cluster)
  && not cfg.engine

let validate cfg =
  let err m = Error m in
  if cfg.replicas < 1 then err "replicas must be >= 1"
  else if cfg.spares < 0 then err "spares must be >= 0"
  else if cfg.cache_blocks < 0 then err "cache_blocks must be >= 0"
  else if cfg.cache_blocks > 0 && not cfg.engine then
    err "cache_blocks requires the engine"
  else if cfg.journaled && not (supports_journal { cfg with journaled = false })
  then err "journaling is supported by the dynamic/cascade direct paths only"
  else if cfg.buggy && not (cfg.journaled || cfg.net) then
    err
      "the buggy adapter drops journal commits (or, under --net, \
       idempotency tokens): it requires --journal or --net"
  else if cfg.integrity && cfg.sut <> Basic then
    err "the integrity envelope is wired up for the basic dictionary only"
  else if (cfg.transient > 0.0 || cfg.straggle > 1) && cfg.sut <> Basic then
    err "fault specs apply to the basic dictionary (it shares our machine)"
  else if cfg.transient < 0.0 || cfg.transient > 0.2 then
    err "transient probability must be in [0, 0.2] (answers must survive)"
  else if cfg.straggle < 1 then err "straggle must be >= 1"
  else if cfg.engine && cfg.sut = Basic then
    err "engine mode drives the one-probe/cascade probe plans, not basic"
  else if cfg.engine && cfg.sut = Cluster then
    err "the cluster owns one engine per shard; --engine does not apply"
  else if cfg.sut = Cluster && cfg.spares > 0 then
    err "spares are per-machine repair; cluster availability is shard-level"
  else if cfg.sut = Cluster && (cfg.shards < 2 || cfg.shards > 16) then
    err "cluster shards must be in [2, 16]"
  else if cfg.sut <> Cluster && cfg.shards <> 0 then
    err "shards applies to the cluster sut only"
  else if cfg.sut = Cluster && cfg.replicas > cfg.shards then
    err "cluster replicas cannot exceed the shard count"
  else if cfg.migrate_at >= 0 && cfg.sut <> Cluster then
    err "migrate_at applies to the cluster sut only"
  else if cfg.migrate_at < -1 then err "migrate_at must be >= -1 (-1 = never)"
  else if cfg.net && cfg.sut <> Cluster then
    err "the message transport applies to the cluster sut only"
  else if cfg.net && cfg.replicas < 2 then
    err "net faults need replicas >= 2 to keep every key available"
  else if cfg.net_drop < 0.0 || cfg.net_drop > 0.2 then
    err "net_drop must be in [0, 0.2] (bounded retries must converge)"
  else if cfg.net_dup < 0.0 || cfg.net_dup > 0.2 then
    err "net_dup must be in [0, 0.2]"
  else if cfg.net_reorder < 1 || cfg.net_reorder > 16 then
    err "net_reorder must be in [1, 16]"
  else if not (List.mem cfg.backend [ "mem"; "file"; "mmap" ]) then
    err "backend must be one of mem|file|mmap"
  else if cfg.backend <> "mem" && cfg.sut = Cluster then
    err
      "real-I/O backends drive the single-machine suts; the cluster's \
       shard machines stay in memory"
  else if cfg.capacity < 8 then err "capacity must be >= 8"
  else if cfg.universe < 4 * cfg.capacity then
    err "universe must be >= 4 * capacity"
  else Ok ()

let describe cfg =
  String.concat ""
    [ sut_to_string cfg.sut;
      (if cfg.shards > 0 then Printf.sprintf "x%d" cfg.shards else "");
      (if cfg.migrate_at >= 0 then Printf.sprintf "+mig@%d" cfg.migrate_at
       else "");
      (if cfg.net then
         Printf.sprintf "+net(drop%g,dup%g%s)" cfg.net_drop cfg.net_dup
           (if cfg.net_hedge then "" else ",nohedge")
       else "");
      (if cfg.backend <> "mem" then "+" ^ cfg.backend else "");
      (if cfg.engine then "+engine" else "");
      (if cfg.cache_blocks > 0 then
         Printf.sprintf "+cache%d" cfg.cache_blocks
       else "");
      (if cfg.journaled then "+journal" else "");
      (if cfg.replicas > 1 then Printf.sprintf "+r%d" cfg.replicas else "");
      (if cfg.spares > 0 then Printf.sprintf "+s%d" cfg.spares else "");
      (if cfg.integrity then "+integrity" else "");
      (if cfg.transient > 0.0 then Printf.sprintf "+transient%g" cfg.transient
       else "");
      (if cfg.straggle > 1 then Printf.sprintf "+straggle%d" cfg.straggle
       else "");
      (if cfg.buggy then "+BUGGY" else "") ]

let to_json cfg =
  J.Obj
    [ ("sut", J.String (sut_to_string cfg.sut));
      ("engine", J.Bool cfg.engine);
      ("cache_blocks", J.Int cfg.cache_blocks);
      ("journaled", J.Bool cfg.journaled);
      ("replicas", J.Int cfg.replicas);
      ("spares", J.Int cfg.spares);
      ("integrity", J.Bool cfg.integrity);
      ("buggy", J.Bool cfg.buggy);
      ("transient", J.Float cfg.transient);
      ("straggle", J.Int cfg.straggle);
      ("block_words", J.Int cfg.block_words);
      ("universe", J.Int cfg.universe);
      ("capacity", J.Int cfg.capacity);
      ("value_bytes", J.Int cfg.value_bytes);
      ("seed", J.Int cfg.seed);
      ("shards", J.Int cfg.shards);
      ("migrate_at", J.Int cfg.migrate_at);
      ("net", J.Bool cfg.net);
      ("net_drop", J.Float cfg.net_drop);
      ("net_dup", J.Float cfg.net_dup);
      ("net_reorder", J.Int cfg.net_reorder);
      ("net_hedge", J.Bool cfg.net_hedge);
      ("backend", J.String cfg.backend) ]

let of_json j =
  let ( let* ) o f = Option.bind o f in
  let field name get = let* v = J.member name j in get v in
  match
    let* sut = field "sut" J.get_string in
    let* sut = sut_of_string sut in
    let* engine = field "engine" J.get_bool in
    let* cache_blocks = field "cache_blocks" J.get_int in
    let* journaled = field "journaled" J.get_bool in
    let* replicas = field "replicas" J.get_int in
    let* spares = field "spares" J.get_int in
    let* integrity = field "integrity" J.get_bool in
    let* buggy = field "buggy" J.get_bool in
    let* transient = field "transient" J.get_float in
    let* straggle = field "straggle" J.get_int in
    let* block_words = field "block_words" J.get_int in
    let* universe = field "universe" J.get_int in
    let* capacity = field "capacity" J.get_int in
    let* value_bytes = field "value_bytes" J.get_int in
    let* seed = field "seed" J.get_int in
    (* fields added after the first repro format shipped: absent means
       the pre-cluster default, so old repro files stay readable *)
    let opt_int name ~default =
      match J.member name j with None -> Some default | Some v -> J.get_int v
    in
    let* shards = opt_int "shards" ~default:0 in
    let* migrate_at = opt_int "migrate_at" ~default:(-1) in
    let opt_bool name ~default =
      match J.member name j with None -> Some default | Some v -> J.get_bool v
    in
    let opt_float name ~default =
      match J.member name j with
      | None -> Some default
      | Some v -> J.get_float v
    in
    let* net = opt_bool "net" ~default:false in
    let* net_drop = opt_float "net_drop" ~default:0.05 in
    let* net_dup = opt_float "net_dup" ~default:0.05 in
    let* net_reorder = opt_int "net_reorder" ~default:3 in
    let* net_hedge = opt_bool "net_hedge" ~default:true in
    let opt_string name ~default =
      match J.member name j with
      | None -> Some default
      | Some v -> J.get_string v
    in
    let* backend = opt_string "backend" ~default:"mem" in
    Some
      { sut; engine; cache_blocks; journaled; replicas; spares; integrity;
        buggy; transient; straggle; block_words; universe; capacity;
        value_bytes; seed; shards; migrate_at; net; net_drop; net_dup;
        net_reorder; net_hedge; backend }
  with
  | Some cfg ->
    (match validate cfg with
     | Ok () -> Ok cfg
     | Error m -> Error ("invalid config: " ^ m))
  | None -> Error "config object is missing or mistypes a field"

(* The generator spec a config implies: population at half capacity so
   first-fit structures never approach their overflow bound even when
   every key is live. *)
let gen_spec ?(count = 96) ?(dist = Sim_gen.Uniform) cfg =
  { Sim_gen.seed = cfg.seed; universe = cfg.universe;
    key_count = max 1 (cfg.capacity / 2); count; dist;
    value_bytes = cfg.value_bytes; lookup_fraction = 0.3;
    delete_fraction = 0.25; static = is_static cfg }
