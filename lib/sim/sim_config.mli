(** System-under-test configurations for the simulation harness.

    A config names one point of the repo's correctness surface: which
    dictionary, driven directly or through the batched query engine
    (with or without its cache), journaled or not, r-way replicated,
    checksummed, under which wire-fault parameters — plus the seed and
    geometry every derived artefact (key population, payloads, fault
    schedule) is a pure function of. Configs serialize to one JSON
    object inside repro files, so a replay rebuilds the exact same
    system. *)

type sut = Basic | One_probe_static | One_probe_dynamic | Dynamic_cascade
         | Cluster

type t = {
  sut : sut;
  engine : bool;  (** drive lookups through {!Pdm_engine.Engine} *)
  cache_blocks : int;  (** engine LRU cache (0 = none) *)
  journaled : bool;  (** write-ahead journal (dynamic/cascade/cluster) *)
  replicas : int;
      (** machine-level disk replicas — except for [Cluster], where it
          is the cluster-level copies-per-key (shard machines stay
          unreplicated; availability comes from shard placement) *)
  spares : int;
  integrity : bool;  (** checksum envelope (basic only) *)
  buggy : bool;
      (** seeded bug: drop journal commit records — or, on a cluster
          with [net], drop idempotency tokens so duplicated writes
          re-apply (exploration must catch either) *)
  transient : float;  (** transient read-fault probability (basic only) *)
  straggle : int;  (** straggle factor on one disk (basic only; 1 = off) *)
  block_words : int;
  universe : int;
  capacity : int;
  value_bytes : int;
  seed : int;
  shards : int;  (** [Cluster] only: shard count in [2, 16] (0 elsewhere) *)
  migrate_at : int;
      (** [Cluster] only: run an add-shard migration just before op
          #[migrate_at] of the stream (-1 = never) *)
  net : bool;
      (** [Cluster] only: route every router↔shard exchange through
          the deterministic message transport (requires
          [replicas >= 2]); schedules may then pin message faults *)
  net_drop : float;  (** per-message loss probability, in [0, 0.2] *)
  net_dup : float;
      (** per-delivered-write duplication probability, in [0, 0.2] *)
  net_reorder : int;
      (** max extra op windows a duplicate lags, in [1, 16] *)
  net_hedge : bool;
      (** hedged reads: fall over to the next replica after one missed
          reply instead of burning the whole retry budget in place *)
  backend : string;
      (** storage under the machine: ["mem"] (default), ["file"] or
          ["mmap"] — the {!Pdm_io} real-I/O backends, in a fresh
          scratch directory per run. Single-machine suts only. *)
}

val default : sut -> t
(** Small scale (B = 32 words, u = 2{^14}, N = 96, seed 1), no
    features: each feature is opted into per config. *)

val sut_to_string : sut -> string
(** ["basic"], ["static"], ["dynamic"], ["cascade"], ["cluster"]
    (CLI names). *)

val sut_of_string : string -> sut option

val is_static : t -> bool
val supports_journal : t -> bool

val validate : t -> (unit, string) result
(** Reject configurations whose features cannot hold their correctness
    contract (e.g. a cache without the engine, faults on a structure
    that builds its own machine, transient probability high enough to
    exhaust the retry budget). *)

val describe : t -> string
(** ["cascade+journal+r2"] — compact label for reports. *)

val to_json : t -> Sim_json.t

val of_json : Sim_json.t -> (t, string) result
(** Fields introduced after the first repro format ([shards],
    [migrate_at], the [net_*] family, [backend]) default when absent,
    so old repro files replay unchanged. *)

val gen_spec : ?count:int -> ?dist:Sim_gen.dist -> t -> Sim_gen.spec
(** The workload-generator spec this config implies (population at
    half capacity; lookups-only for static structures). *)
