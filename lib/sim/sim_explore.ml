module Prng = Pdm_util.Prng
module W = Pdm_workload.Trace

type outcome = {
  config : Sim_config.t;
  ops : W.op array;
  total_space : int;
  explored : int;
  clean : int;
  divergent : Sim_run.report list;
  shrunk : Sim_shrink.result option;
}

(* Op indices whose op would change the stored set at that point of
   the stream — the journal runs exactly there, so those are the crash
   targets. Computed on a scratch model, no machine involved. *)
let mutating_indices ops =
  let model = Sim_model.create () in
  let acc = ref [] in
  Array.iteri
    (fun i op ->
      if Sim_model.mutates model op then acc := i :: !acc;
      ignore (Sim_model.apply model op))
    ops;
  List.rev !acc

let kill_target_disks (cfg : Sim_config.t) =
  (* killing any one physical disk is transparent with r >= 2; sweep
     a handful of distinct disks (every sut machine has at least 6)
     rather than all D *)
  if cfg.replicas < 2 then [] else [ 0; 1; 2; 3 ]

(* The full candidate space, one schedule per element, deduplicated by
   canonical serialization. Single-event schedules probe each
   mechanism in isolation; kill and damage get a paired +scrub variant
   so the repair path is explored too. *)
let candidates (cfg : Sim_config.t) ops ~max_partial =
  let n = Array.length ops in
  let muts = mutating_indices ops in
  let crash =
    if cfg.journaled then
      List.concat_map
        (fun at ->
          List.map
            (fun point -> [ Sim_schedule.Crash { at; point } ])
            (Sim_schedule.all_points ~max_partial))
        muts
    else []
  in
  let spots = List.filter (fun i -> i mod 7 = 3) (List.init n (fun i -> i)) in
  let kills =
    List.concat_map
      (fun at ->
        List.concat_map
          (fun disk ->
            if cfg.sut = Sim_config.Cluster then
              (* shard fail-stop; scrub is machine-level repair and a
                 no-op on cluster runs, so no +scrub variant *)
              [ [ Sim_schedule.Kill { at; disk } ] ]
            else
              [ [ Sim_schedule.Kill { at; disk } ];
                [ Sim_schedule.Kill { at; disk };
                  Sim_schedule.Scrub { at = min n (at + 5) } ] ])
          (kill_target_disks cfg))
      spots
  in
  let damages =
    (* only with a checksum envelope: an unchecksummed machine cannot
       detect stored damage, so silent wrong answers are the documented
       behavior there, not a divergence *)
    if cfg.integrity then
      List.concat_map
        (fun at ->
          List.concat_map
            (fun nth ->
              [ [ Sim_schedule.Damage { at; nth } ];
                [ Sim_schedule.Damage { at; nth };
                  Sim_schedule.Scrub { at = min n (at + 5) } ] ])
            [ 0; 3; 11 ])
        spots
    else []
  in
  let nets =
    (* message-level faults: drops and duplicates pinned to individual
       ops across every shard, and partitions — symmetric and
       asymmetric — spanning a few op windows, including one bracketing
       the armed migration so the router is cut off from a shard
       mid-plan *)
    if not cfg.net then []
    else begin
      let shards = List.init cfg.shards (fun s -> s) in
      let singles =
        List.concat_map
          (fun at ->
            List.concat_map
              (fun shard ->
                [ [ Sim_schedule.Net_drop { at; shard } ];
                  [ Sim_schedule.Net_dup { at; shard } ] ])
              shards)
          spots
      in
      let part_spots =
        List.filter (fun i -> i mod 11 = 5) (List.init n (fun i -> i))
      in
      let part_spots =
        if cfg.migrate_at >= 1 then (cfg.migrate_at - 1) :: part_spots
        else part_spots
      in
      let parts =
        List.concat_map
          (fun at ->
            List.concat_map
              (fun shard ->
                List.map
                  (fun symmetric ->
                    [ Sim_schedule.Net_partition
                        { at; shard; span = 8; symmetric } ])
                  [ true; false ])
              shards)
          part_spots
      in
      singles @ parts
    end
  in
  let all = [] :: (crash @ kills @ damages @ nets) in
  let seen = Hashtbl.create 97 in
  List.filter
    (fun s ->
      let key = Sim_json.to_string (Sim_schedule.to_json s) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    all

let explore ?(budget = 600) ?(max_divergent = 5) ?(shrink_budget = 800)
    ?(count = 128) ?(dist = Sim_gen.Uniform) ?(max_partial = 2)
    (cfg : Sim_config.t) =
  let spec = Sim_config.gen_spec ~count ~dist cfg in
  let ops = Sim_gen.ops spec in
  let space = Array.of_list (candidates cfg ops ~max_partial) in
  let total = Array.length space in
  let picks =
    if total <= budget then Array.init total (fun i -> i)
    else begin
      (* seeded sampling fallback for large spaces: a distinct,
         deterministic subset (index 0 — the clean run — always in) *)
      let g = Prng.create (Prng.hash2 ~seed:cfg.seed 0xe8b1 total) in
      let rest =
        Pdm_util.Sampling.distinct g ~universe:(total - 1)
          ~count:(budget - 1)
      in
      Array.append [| 0 |] (Array.map (fun i -> i + 1) rest)
    end
  in
  let divergent = ref [] and n_div = ref 0 and clean = ref 0 in
  let first_failure = ref None in
  Array.iter
    (fun idx ->
      let schedule = space.(idx) in
      let r = Sim_run.run cfg schedule (Array.to_seq ops) in
      if Sim_run.ok r then incr clean
      else begin
        incr n_div;
        if !first_failure = None then first_failure := Some schedule;
        if List.length !divergent < max_divergent then
          divergent := r :: !divergent
      end)
    picks;
  let shrunk =
    match !first_failure with
    | None -> None
    | Some schedule -> Sim_shrink.shrink ~budget:shrink_budget cfg ops schedule
  in
  { config = cfg; ops; total_space = total; explored = Array.length picks;
    clean = !clean; divergent = List.rev !divergent; shrunk }
