(** The differential runner: one simulation case, checked
    answer-for-answer against the pure model.

    [run cfg schedule ops] builds the configured system
    ({!Sim_sut.build}), pre-populates it, then executes the op stream
    in program order, firing the schedule's kill/damage/scrub events
    before their pinned op and arming crash points on theirs. Every
    lookup answer, delete report, crash-visibility outcome (an update
    crashed before its commit point must vanish, one crashed at or
    after it must survive), recovery idempotence, full-key sweeps
    after each recovery and at the end, and a final scrub on
    replicated/checksummed configs are all checked; any mismatch or
    escaped storage error becomes a {!divergence}.

    Runs of event-free consecutive lookups are batched through
    {!Sim_sut.find_batch} when the config has one, so engine configs
    are exercised with real multi-request batches.

    Determinism contract: the same (config, schedule, ops) triple
    produces the same report, bit for bit — there is no hidden RNG
    and no wall clock anywhere below this interface. *)

type divergence = {
  at : int;  (** op index; [n] (= ops length) for post-run checks *)
  kind : string;
      (** ["answer"], ["crash-visibility"], ["sweep"], ["recover"],
          ["scrub"], ["storage"], ["build"] *)
  detail : string;
}

type report = {
  config : Sim_config.t;
  schedule : Sim_schedule.t;  (** canonical form *)
  ops_run : int;
  crashes : int;  (** injected crashes that actually fired *)
  recoveries : int;
  divergences : divergence list;  (** chronological; empty = pass *)
}

val ok : report -> bool

val divergence_to_json : divergence -> Sim_json.t

val crash_survives : Pdm_sim.Journal.crash_point -> bool
(** The visibility the write-ahead protocol promises: [false] before
    the commit-header write (update vanishes on recovery), [true] at
    or after it (recovery replays). *)

val run :
  Sim_config.t -> Sim_schedule.t -> Pdm_workload.Trace.op Seq.t -> report
