type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
    (* %.17g round-trips every double, keeping emit/parse bit-stable. *)
    Buffer.add_string b (Printf.sprintf "%.17g" v)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over one line.                           *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n'
          || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let lit word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance (); loop ()
         | Some '\\' -> Buffer.add_char b '\\'; advance (); loop ()
         | Some '/' -> Buffer.add_char b '/'; advance (); loop ()
         | Some 'n' -> Buffer.add_char b '\n'; advance (); loop ()
         | Some 'r' -> Buffer.add_char b '\r'; advance (); loop ()
         | Some 't' -> Buffer.add_char b '\t'; advance (); loop ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some c when c < 0x80 -> Buffer.add_char b (Char.chr c)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "bad \\u escape");
           loop ()
         | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
          | _ -> false)
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some v -> Int v
    | None ->
      (match float_of_string_opt text with
       | Some v -> Float v
       | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let kvs = ref [] in
        let rec fields () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          kvs := (k, v) :: !kvs;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        fields ();
        Obj (List.rev !kvs)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let vs = ref [] in
        let rec items () =
          let v = parse_value () in
          vs := v :: !vs;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        items ();
        List (List.rev !vs)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error "trailing characters" else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let get_int = function Int v -> Some v | _ -> None

let get_float = function
  | Float v -> Some v
  | Int v -> Some (float_of_int v)
  | _ -> None

let get_bool = function Bool v -> Some v | _ -> None

let get_string = function String v -> Some v | _ -> None

let get_list = function List v -> Some v | _ -> None

let hex_of_bytes b =
  let out = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string out (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let ok = ref true in
    let b =
      Bytes.init (n / 2) (fun i ->
          match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
          | Some v -> Char.chr v
          | None ->
            ok := false;
            '\000')
    in
    if !ok then Some b else None
