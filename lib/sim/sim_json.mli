(** A minimal one-line JSON reader/writer for the simulation-testing
    subsystem's repro files.

    Repro files are JSONL — one JSON value per line — and must
    round-trip bit-identically ([to_string] then [of_string] then
    [to_string] is the identity on emitted values), so replays compare
    equal byte for byte. Only what repros need is supported: objects,
    arrays, strings, 63-bit ints, doubles, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering, keys in the given order. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; [Error] names the position of the
    first offending character. *)

val member : string -> t -> t option
(** Object field access ([None] on missing field or non-object). *)

val get_int : t -> int option
val get_float : t -> float option
(** Accepts ints too (JSON does not distinguish). *)

val get_bool : t -> bool option
val get_string : t -> string option
val get_list : t -> t list option

val hex_of_bytes : Bytes.t -> string
(** Lowercase hex, two digits per byte — how repro files carry
    payloads. *)

val bytes_of_hex : string -> Bytes.t option
(** Inverse of {!hex_of_bytes}; [None] on odd length or non-hex. *)
