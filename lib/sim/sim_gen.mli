(** Seeded deterministic workload generation for the simulation-testing
    subsystem.

    A {!spec} fully determines an op stream: the key population, the
    disjoint pool of guaranteed-absent keys, every op and every payload
    are pure functions of the seed, so the explorer, the shrinker, the
    qcheck properties and a replayed repro all reconstruct identical
    streams. Distributions cover the access patterns the paper's
    worst-case arguments must survive: uniform, Zipf-skewed
    (webmail/http popularity, Section 1.2) and an adversarial
    churn pattern that hammers a tiny hot set with insert/delete/
    re-insert cycles — the analogue of the adversarial sequences
    stressed by the quasirandom load-balancing literature. *)

type dist =
  | Uniform
  | Zipf_skew of float  (** exponent s of the rank distribution *)
  | Adversarial  (** 80% of ops on an 8-key hot set, heavy churn *)

type spec = {
  seed : int;
  universe : int;  (** key universe size *)
  key_count : int;  (** population drawn from the universe *)
  count : int;  (** ops to generate *)
  dist : dist;
  value_bytes : int;  (** payload bytes per record *)
  lookup_fraction : float;
  delete_fraction : float;  (** of the non-lookup remainder *)
  static : bool;  (** lookups only (static structures) *)
}

val default : spec
(** seed 1, 2{^14} universe, 48 keys, 96 ops, uniform, 8-byte values,
    30% lookups, 25% deletes, dynamic. *)

val validate : spec -> (unit, string) result

val dist_to_string : dist -> string
(** ["uniform"], ["zipf:1.1"], ["adversarial"] — the CLI/repro syntax. *)

val dist_of_string : string -> dist option
(** Inverse of {!dist_to_string}; also accepts bare ["zipf"]. *)

val keys : spec -> int array
(** The seeded key population (deterministic in the spec). *)

val value_at : spec -> index:int -> int -> Bytes.t
(** The payload op [index] stores for a key — versioned by index, so
    overwrites store fresh bytes and any dropped update is observable. *)

val ops : spec -> Pdm_workload.Trace.op array
(** The full op stream. Raises [Invalid_argument] on an invalid spec. *)

val ops_seq : spec -> Pdm_workload.Trace.op Seq.t
(** The same stream as a sequence (for the streaming runner). *)

val initial_data : spec -> (int * Bytes.t) array
(** Pre-load data for static structures: the whole population with
    deterministic payloads. Empty unless [static]. *)
