(** Uniform adapters putting every dictionary variant — basic,
    one-probe static/dynamic, dynamic cascade, the sharded cluster;
    direct or behind the batched query engine; journaled, replicated,
    checksummed or fault-injected — behind one record the differential
    runner drives.

    Optional capabilities are [option] fields: a static structure has
    no [insert]; only journaled configs expose [set_crash]/[recover];
    only engine and cluster configs expose [find_batch]; only the
    cluster exposes [kill_shard]. The runner consults the fields
    instead of the config, so new adapters only have to fill in the
    record. *)

type t = {
  name : string;
  machine : int Pdm_sim.Pdm.t;
      (** For schedule events: kill/damage/scrub run on this machine
          (for a cluster, shard 0's machine — kills go through
          [kill_shard] instead). *)
  find : int -> Bytes.t option;
  find_batch : (int list -> Bytes.t option list) option;
      (** Batched lookups through the engine(s) (answers in argument
          order). [None] on direct configs. *)
  insert : (int -> Bytes.t -> unit) option;
  delete : (int -> bool) option;
  set_crash : (Pdm_sim.Journal.crash_point option -> unit) option;
      (** Arm/disarm a crash for the next journaled update (for a
          cluster: the next client update's primary-shard write). *)
  recover : (unit -> [ `Clean | `Discarded | `Replayed of int ]) option;
  kill_shard : (int -> unit) option;
      (** Cluster only: fail-stop shard [i mod shard count]. *)
  inject_net : (Pdm_cluster.Transport.pin -> unit) option;
      (** Cluster with a transport only: pin a message fault (drop,
          duplicate, partition) at the next op index. The runner
          routes [Net_*] schedule events here. *)
}

val build : Sim_config.t -> data:(int * Bytes.t) array -> t
(** Construct the configured system. [data] pre-populates it: static
    structures are built over it, dynamic ones insert it through their
    ordinary update path (before any schedule event can fire). Raises
    [Invalid_argument] on a config {!Sim_config.validate} rejects. *)

val seeded_bug : t -> t
(** The deliberately buggy adapter the sim's own tests hunt: every
    third journaled update asked to crash at [After_commit] silently
    crashes at [After_log] instead — the adapter "drops the commit
    record", so an update the checker was promised would survive
    recovery vanishes. Clean runs and non-crash schedules cannot see
    it. Applied automatically by {!build} when the config says
    [buggy] — except on a cluster with a transport, where [buggy]
    instead drops idempotency tokens inside the transport spec (the
    message-level seeded bug). Exposed for tests that wrap their own
    adapter. Raises [Invalid_argument] on a non-journaled adapter. *)
