(** Repro files: one failing simulation case, on disk, replayable bit
    for bit.

    JSONL layout — line 1 is a header object carrying the config, the
    canonical fault schedule, the op count and the expected divergence
    list (each divergence serialized to its canonical JSON string);
    each following line is one op, with payload bytes hex-encoded.
    Everything a replay needs is in the file: nothing references the
    generator, so a repro stays valid even if generation heuristics
    change later. *)

type header = {
  config : Sim_config.t;
  schedule : Sim_schedule.t;
  op_count : int;
  expected : string list;
      (** The recorded divergences, one canonical JSON string each. *)
}

val op_to_json : Pdm_workload.Trace.op -> Sim_json.t
val op_of_json : Sim_json.t -> Pdm_workload.Trace.op option

val expected_of_report : Sim_run.report -> string list
(** The divergence strings a report would record in a header. *)

val write : path:string -> Sim_run.report -> ops:Pdm_workload.Trace.op array -> unit
(** Write a repro for a (typically shrunk) failing report. *)

val load : path:string -> (header * Pdm_workload.Trace.op array, string) result

val replay :
  path:string -> (header * Sim_run.report * bool, string) result
(** Re-execute the case. The boolean is the bit-identical verdict:
    the re-run produced exactly the recorded divergence strings, in
    order. (A repro of a since-fixed bug replays with an empty
    divergence list and verdict [false] — the fix changed behavior.) *)
