(** Counterexample minimization.

    Given a failing (ops, schedule) pair for a config, produce a small
    pair that still fails, by (1) truncating everything after the
    first divergence, (2) delta-debugging the op sequence with chunks
    of halving size — re-pinning schedule events onto the surviving op
    indices and dropping events whose op disappeared — and (3)
    pruning schedule events one at a time. Every candidate is checked
    by a full {!Sim_run.run}, so the result is a genuine failure, not
    a guess; the whole process is deterministic. *)

type result = {
  ops : Pdm_workload.Trace.op array;
  schedule : Sim_schedule.t;
  report : Sim_run.report;  (** the minimized case's failing report *)
  runs_used : int;
}

val remap :
  bool array ->
  Pdm_workload.Trace.op array ->
  Sim_schedule.t ->
  Pdm_workload.Trace.op array * Sim_schedule.t
(** [remap keep ops schedule] drops ops marked [false] and re-pins
    (or drops) schedule events accordingly. Exposed for tests. *)

val shrink :
  ?budget:int ->
  Sim_config.t ->
  Pdm_workload.Trace.op array ->
  Sim_schedule.t ->
  result option
(** [None] when the original pair does not fail (nothing to shrink).
    [budget] caps the number of candidate runs (default 800). *)
