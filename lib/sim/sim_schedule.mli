(** Fault schedules: the second coordinate of a simulation case.

    A schedule is a list of events pinned to op indices ([at] = the
    0-based index of the op the event fires on — crashes arm the op
    itself; kill/damage/scrub fire just before it). Schedules are
    values: the explorer enumerates them, the shrinker prunes them,
    and repro files serialize them, so one failing (ops, schedule,
    config) triple replays bit-identically. *)

type event =
  | Crash of { at : int; point : Pdm_sim.Journal.crash_point }
      (** Arm the journal crash point for the update at index [at].
          Only meaningful on a journaled config, on a mutating op. *)
  | Kill of { at : int; disk : int }
      (** Fail-stop logical disk [disk] before op [at]. *)
  | Damage of { at : int; nth : int }
      (** Corrupt the [nth] allocated block (primary replica) before
          op [at] — a latent-sector-error model. *)
  | Scrub of { at : int }  (** Run a scrub/repair pass before op [at]. *)
  | Net_drop of { at : int; shard : int }
      (** Drop the first request op [at] sends to [shard] (cluster with
          a transport only). *)
  | Net_dup of { at : int; shard : int }
      (** Duplicate op [at]'s first delivered write to [shard]; the
          replay lands a bounded number of op windows later — the
          at-most-once protocol must absorb it. *)
  | Net_partition of { at : int; shard : int; span : int; symmetric : bool }
      (** Cut the router off from [shard] for ops [at, at + span);
          asymmetric partitions deliver requests but lose replies. *)

type t = event list

val at : event -> int

val with_at : event -> int -> event
(** The same event re-pinned to another op index (the shrinker's
    remapping when ops are removed). *)

val canonical : t -> t
(** Sorted by (index, kind) — the serialized form, so structurally
    equal schedules serialize identically and dedupe by string. *)

val point_to_string : Pdm_sim.Journal.crash_point -> string
val point_of_string : string -> Pdm_sim.Journal.crash_point option

val all_points : max_partial:int -> Pdm_sim.Journal.crash_point list
(** Every crash point, with torn-write depths 1..[max_partial] for the
    [During_log]/[During_apply] families — the per-update axis the
    bounded-exhaustive explorer sweeps. *)

val event_to_json : event -> Sim_json.t
val event_of_json : Sim_json.t -> event option
val to_json : t -> Sim_json.t
val of_json : Sim_json.t -> (t, string) result

val describe : t -> string
(** ["crash@17=after_commit,kill@3=d2"] — compact label. *)
