module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling
module Zipf = Pdm_util.Zipf
module W = Pdm_workload.Trace
module Payload = Pdm_workload.Payload

type dist = Uniform | Zipf_skew of float | Adversarial

type spec = {
  seed : int;
  universe : int;
  key_count : int;
  count : int;
  dist : dist;
  value_bytes : int;
  lookup_fraction : float;
  delete_fraction : float;
  static : bool;
}

let default =
  { seed = 1; universe = 1 lsl 14; key_count = 48; count = 96;
    dist = Uniform; value_bytes = 8; lookup_fraction = 0.3;
    delete_fraction = 0.25; static = false }

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipf_skew s -> Printf.sprintf "zipf:%g" s
  | Adversarial -> "adversarial"

let dist_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Some Uniform
  | "adversarial" -> Some Adversarial
  | "zipf" -> Some (Zipf_skew 1.1)
  | s when String.length s > 5 && String.sub s 0 5 = "zipf:" ->
    (match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
     | Some e when e >= 0.0 -> Some (Zipf_skew e)
     | _ -> None)
  | _ -> None

let validate spec =
  if spec.key_count < 1 then Error "key_count must be >= 1"
  else if spec.count < 0 then Error "count must be >= 0"
  else if 2 * spec.key_count > spec.universe then
    Error "universe too small for a disjoint negative-key pool"
  else if spec.value_bytes < 1 then Error "value_bytes must be >= 1"
  else if spec.lookup_fraction < 0.0 || spec.lookup_fraction > 1.0 then
    Error "lookup_fraction must be in [0, 1]"
  else if spec.delete_fraction < 0.0 || spec.delete_fraction > 1.0 then
    Error "delete_fraction must be in [0, 1]"
  else Ok ()

(* The population and its disjoint negative pool are a pure function
   of (seed, universe, key_count): every consumer — harness, explorer,
   qcheck properties — recomputes the same arrays. *)
let key_pools spec =
  Sampling.disjoint_pair
    (Prng.create (Prng.hash2 ~seed:spec.seed 0x5e7 spec.key_count))
    ~universe:spec.universe ~count:spec.key_count

let keys spec = fst (key_pools spec)

(* Per-op payload: versioned by op index so an overwrite stores fresh
   bytes (a dropped update is then always observable). *)
let value_at spec ~index k =
  Payload.value_bytes_of ~seed:(Prng.hash2 ~seed:spec.seed 0xda7a index)
    spec.value_bytes k

let pick_uniform rng ks = ks.(Prng.int rng (Array.length ks))

let ops spec =
  (match validate spec with
   | Ok () -> ()
   | Error m -> invalid_arg ("Sim_gen.ops: " ^ m));
  let members, absent = key_pools spec in
  let rng = Prng.create (Prng.hash2 ~seed:spec.seed 0x09 spec.count) in
  let zipf =
    match spec.dist with
    | Zipf_skew s -> Some (Zipf.create ~n:(Array.length members) ~s)
    | Uniform | Adversarial -> None
  in
  let hot =
    (* Adversarial churn concentrates on a tiny hot set: the same few
       keys are inserted, deleted and re-inserted so journaled updates,
       first-fit level moves and tombstone paths are hit repeatedly. *)
    Array.sub members 0 (min 8 (Array.length members))
  in
  let pick_key () =
    match (spec.dist, zipf) with
    | _, Some z -> members.(Zipf.sample z rng)
    | Adversarial, None ->
      if Prng.float rng 1.0 < 0.8 then pick_uniform rng hot
      else pick_uniform rng members
    | (Uniform | Zipf_skew _), None -> pick_uniform rng members
  in
  let negative () = pick_uniform rng absent in
  Array.init spec.count (fun i ->
      let k = pick_key () in
      if spec.static then
        (* Static structures: lookups only, 1 in 4 of a guaranteed
           absent key so the miss path is differential-checked too. *)
        W.Lookup (if Prng.int rng 4 = 0 then negative () else k)
      else if Prng.float rng 1.0 < spec.lookup_fraction then
        W.Lookup (if Prng.int rng 5 = 0 then negative () else k)
      else if Prng.float rng 1.0 < spec.delete_fraction then W.Delete k
      else W.Insert (k, value_at spec ~index:i k))

let ops_seq spec = Array.to_seq (ops spec)

(* Static structures are pre-loaded with the whole population. *)
let initial_data spec =
  if not spec.static then [||]
  else
    Array.mapi
      (fun i k -> (k, value_at spec ~index:(-1 - i) k))
      (keys spec)
