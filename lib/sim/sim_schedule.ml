module J = Sim_json

type event =
  | Crash of { at : int; point : Pdm_sim.Journal.crash_point }
  | Kill of { at : int; disk : int }
  | Damage of { at : int; nth : int }
  | Scrub of { at : int }
  | Net_drop of { at : int; shard : int }
  | Net_dup of { at : int; shard : int }
  | Net_partition of { at : int; shard : int; span : int; symmetric : bool }

type t = event list

let at = function
  | Crash { at; _ } | Kill { at; _ } | Damage { at; _ } | Scrub { at }
  | Net_drop { at; _ } | Net_dup { at; _ } | Net_partition { at; _ } -> at

let with_at event at =
  match event with
  | Crash c -> Crash { c with at }
  | Kill k -> Kill { k with at }
  | Damage d -> Damage { d with at }
  | Scrub _ -> Scrub { at }
  | Net_drop d -> Net_drop { d with at }
  | Net_dup d -> Net_dup { d with at }
  | Net_partition p -> Net_partition { p with at }

let canonical events =
  let rank = function
    | Crash _ -> 0
    | Kill _ -> 1
    | Damage _ -> 2
    | Scrub _ -> 3
    | Net_drop _ -> 4
    | Net_dup _ -> 5
    | Net_partition _ -> 6
  in
  List.stable_sort
    (fun a b ->
      let c = compare (at a) (at b) in
      if c <> 0 then c else compare (rank a) (rank b))
    events

let point_to_string : Pdm_sim.Journal.crash_point -> string = function
  | Before_log -> "before_log"
  | During_log k -> Printf.sprintf "during_log:%d" k
  | After_log -> "after_log"
  | After_commit -> "after_commit"
  | During_apply k -> Printf.sprintf "during_apply:%d" k
  | After_apply -> "after_apply"

let point_of_string s : Pdm_sim.Journal.crash_point option =
  match String.split_on_char ':' s with
  | [ "before_log" ] -> Some Before_log
  | [ "during_log"; k ] -> Option.map (fun k -> Pdm_sim.Journal.During_log k) (int_of_string_opt k)
  | [ "after_log" ] -> Some After_log
  | [ "after_commit" ] -> Some After_commit
  | [ "during_apply"; k ] ->
    Option.map (fun k -> Pdm_sim.Journal.During_apply k) (int_of_string_opt k)
  | [ "after_apply" ] -> Some After_apply
  | _ -> None

let all_points ~max_partial : Pdm_sim.Journal.crash_point list =
  let partials lo =
    List.init max_partial (fun i -> i + 1) |> List.map lo
  in
  (Pdm_sim.Journal.Before_log
   :: partials (fun k -> Pdm_sim.Journal.During_log k))
  @ (Pdm_sim.Journal.After_log :: Pdm_sim.Journal.After_commit
     :: partials (fun k -> Pdm_sim.Journal.During_apply k))
  @ [ Pdm_sim.Journal.After_apply ]

let event_to_json = function
  | Crash { at; point } ->
    J.Obj
      [ ("event", J.String "crash"); ("at", J.Int at);
        ("point", J.String (point_to_string point)) ]
  | Kill { at; disk } ->
    J.Obj [ ("event", J.String "kill"); ("at", J.Int at); ("disk", J.Int disk) ]
  | Damage { at; nth } ->
    J.Obj
      [ ("event", J.String "damage"); ("at", J.Int at); ("nth", J.Int nth) ]
  | Scrub { at } -> J.Obj [ ("event", J.String "scrub"); ("at", J.Int at) ]
  | Net_drop { at; shard } ->
    J.Obj
      [ ("event", J.String "net_drop"); ("at", J.Int at);
        ("shard", J.Int shard) ]
  | Net_dup { at; shard } ->
    J.Obj
      [ ("event", J.String "net_dup"); ("at", J.Int at);
        ("shard", J.Int shard) ]
  | Net_partition { at; shard; span; symmetric } ->
    J.Obj
      [ ("event", J.String "net_partition"); ("at", J.Int at);
        ("shard", J.Int shard); ("span", J.Int span);
        ("symmetric", J.Bool symmetric) ]

let event_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* kind = Option.bind (J.member "event" j) J.get_string in
  let* at = Option.bind (J.member "at" j) J.get_int in
  match kind with
  | "crash" ->
    let* p = Option.bind (J.member "point" j) J.get_string in
    let* point = point_of_string p in
    Some (Crash { at; point })
  | "kill" ->
    let* disk = Option.bind (J.member "disk" j) J.get_int in
    Some (Kill { at; disk })
  | "damage" ->
    let* nth = Option.bind (J.member "nth" j) J.get_int in
    Some (Damage { at; nth })
  | "scrub" -> Some (Scrub { at })
  | "net_drop" ->
    let* shard = Option.bind (J.member "shard" j) J.get_int in
    Some (Net_drop { at; shard })
  | "net_dup" ->
    let* shard = Option.bind (J.member "shard" j) J.get_int in
    Some (Net_dup { at; shard })
  | "net_partition" ->
    let* shard = Option.bind (J.member "shard" j) J.get_int in
    let* span = Option.bind (J.member "span" j) J.get_int in
    let* symmetric = Option.bind (J.member "symmetric" j) J.get_bool in
    Some (Net_partition { at; shard; span; symmetric })
  | _ -> None

let to_json events = J.List (List.map event_to_json (canonical events))

let of_json j =
  match J.get_list j with
  | None -> Error "schedule must be a JSON array"
  | Some items ->
    let rec loop acc = function
      | [] -> Ok (canonical (List.rev acc))
      | item :: rest ->
        (match event_of_json item with
         | Some e -> loop (e :: acc) rest
         | None -> Error ("malformed schedule event: " ^ J.to_string item))
    in
    loop [] items

let describe events =
  match canonical events with
  | [] -> "(no faults)"
  | events ->
    String.concat ","
      (List.map
         (function
           | Crash { at; point } ->
             Printf.sprintf "crash@%d=%s" at (point_to_string point)
           | Kill { at; disk } -> Printf.sprintf "kill@%d=d%d" at disk
           | Damage { at; nth } -> Printf.sprintf "damage@%d=#%d" at nth
           | Scrub { at } -> Printf.sprintf "scrub@%d" at
           | Net_drop { at; shard } ->
             Printf.sprintf "netdrop@%d=s%d" at shard
           | Net_dup { at; shard } -> Printf.sprintf "netdup@%d=s%d" at shard
           | Net_partition { at; shard; span; symmetric } ->
             Printf.sprintf "netpart@%d=s%d+%d%s" at shard span
               (if symmetric then "" else "(asym)"))
         events)
