module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Backend = Pdm_sim.Backend
module Transport = Pdm_cluster.Transport
module W = Pdm_workload.Trace

type divergence = { at : int; kind : string; detail : string }

type report = {
  config : Sim_config.t;
  schedule : Sim_schedule.t;
  ops_run : int;
  crashes : int;
  recoveries : int;
  divergences : divergence list;
}

let ok r = r.divergences = []

let divergence_to_json d =
  Sim_json.Obj
    [ ("at", Sim_json.Int d.at); ("kind", Sim_json.String d.kind);
      ("detail", Sim_json.String d.detail) ]

let string_of_bytes_opt = function
  | None -> "absent"
  | Some b -> "0x" ^ Sim_json.hex_of_bytes b

let answers_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Bytes.equal x y
  | _ -> false

(* Crash points at or past the commit header write leave a committed
   log: recovery must replay the update. Earlier points must discard
   it. *)
let crash_survives : Journal.crash_point -> bool = function
  | Before_log | During_log _ | After_log -> false
  | After_commit | During_apply _ | After_apply -> true

type state = {
  cfg : Sim_config.t;
  sut : Sim_sut.t;
  model : Sim_model.t;
  mutable ops_run : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable divergences : divergence list;  (* reverse order *)
}

let diverge st ~at ~kind detail =
  st.divergences <- { at; kind; detail } :: st.divergences

let storage_error = function
  | Backend.Disk_failed _ | Backend.Corrupt_block _
  | Backend.Retries_exhausted _ ->
    true
  | _ -> false

(* Compare the system's answer for every key the workload ever
   mentioned against the model — the strongest check we can run
   without reading unconstrained keys. *)
let sweep st ~at ~kind =
  List.iter
    (fun k ->
      let expected = Sim_model.find st.model k in
      match st.sut.Sim_sut.find k with
      | got ->
        if not (answers_equal got expected) then
          diverge st ~at ~kind
            (Printf.sprintf "sweep key %d: sut %s, model %s" k
               (string_of_bytes_opt got)
               (string_of_bytes_opt expected))
      | exception e when storage_error e ->
        diverge st ~at ~kind:"storage"
          (Printf.sprintf "sweep key %d: %s" k (Printexc.to_string e)))
    (Sim_model.touched_keys st.model)

let recover_now st ~at =
  match st.sut.Sim_sut.recover with
  | None ->
    diverge st ~at ~kind:"crash" "crash raised but adapter has no recover"
  | Some recover ->
    st.recoveries <- st.recoveries + 1;
    let (_ : [ `Clean | `Discarded | `Replayed of int ]) = recover () in
    (* Recovery must be idempotent: a second run right away finds the
       header cleared and changes nothing. *)
    (match recover () with
     | `Clean -> ()
     | `Discarded ->
       diverge st ~at ~kind:"recover" "second recovery discarded a log again"
     | `Replayed n ->
       diverge st ~at ~kind:"recover"
         (Printf.sprintf "second recovery replayed %d blocks again" n))

let fire_kill st disk =
  match st.sut.Sim_sut.kill_shard with
  | Some kill ->
    (* cluster: a Kill event is a shard fail-stop, not a disk *)
    kill disk
  | None ->
    let m = st.sut.Sim_sut.machine in
    let total = Pdm.physical_disks m in
    if total > 0 then Pdm.kill_disk m (disk mod total)

let fire_net st ~at pin =
  match st.sut.Sim_sut.inject_net with
  | Some inject -> inject pin
  | None ->
    diverge st ~at ~kind:"schedule"
      "net event on an adapter without a transport"

let fire_damage st nth =
  let m = st.sut.Sim_sut.machine in
  let addrs = ref [] in
  Pdm.iter_allocated m (fun a _ -> addrs := a :: !addrs);
  let addrs = Array.of_list (List.rev !addrs) in
  let n = Array.length addrs in
  if n > 0 then Pdm.damage_stored m addrs.(nth mod n) ~replica:0

let fire_scrub st ~at =
  (* A cluster's availability is shard-level: its machines are
     unreplicated (killing a shard legitimately loses that machine's
     blocks — the data lives on the other replica shards), so the
     machine-level scrub invariant does not apply. The sweep checks
     every answer instead. *)
  if st.cfg.Sim_config.sut = Sim_config.Cluster then ()
  else
  let r = Pdm.scrub st.sut.Sim_sut.machine in
  (* Unrepairable replicas are a divergence only when the config
     provided spares to re-home them onto; without spares a dead
     disk's replicas legitimately stay unrepaired (the data is still
     safe on the survivors — lost_blocks counts actual loss). *)
  if r.Pdm.lost_blocks > 0
     || (r.Pdm.unrepairable_replicas > 0 && st.cfg.Sim_config.spares > 0)
  then
    diverge st ~at ~kind:"scrub"
      (Printf.sprintf "scrub: %d lost blocks, %d unrepairable replicas"
         r.Pdm.lost_blocks r.Pdm.unrepairable_replicas)

let check_answer st ~at ~op_desc got expected =
  if not (answers_equal got expected) then
    diverge st ~at ~kind:"answer"
      (Printf.sprintf "%s: sut %s, model %s" op_desc
         (string_of_bytes_opt got)
         (string_of_bytes_opt expected))

(* Run one mutating op with an optional armed crash point. The model
   is updated only with what the protocol promises survives; after a
   crash the structure is recovered and fully swept. *)
let run_update st ~at ~crash op =
  let arm p =
    match st.sut.Sim_sut.set_crash with
    | Some set when Sim_model.mutates st.model op -> set (Some p); true
    | _ -> false
  in
  let disarm () =
    match st.sut.Sim_sut.set_crash with Some set -> set None | None -> ()
  in
  let armed = match crash with Some p -> arm p | None -> false in
  let apply_model () = ignore (Sim_model.apply st.model op) in
  let finish_clean () =
    disarm ();
    apply_model ()
  in
  match op with
  | W.Lookup _ -> ()
  | W.Insert (k, v) ->
    (match st.sut.Sim_sut.insert with
     | None ->
       disarm ();
       diverge st ~at ~kind:"answer" "insert on a static structure"
     | Some ins ->
       (match ins k v with
        | () ->
          (* also covers an armed During_log/During_apply point the
             batch was too small to reach: the update completed *)
          finish_clean ()
        | exception Journal.Crashed ->
          st.crashes <- st.crashes + 1;
          disarm ();
          (match crash with
           | Some p when armed && crash_survives p -> apply_model ()
           | _ -> ());
          recover_now st ~at;
          sweep st ~at ~kind:"crash-visibility"
        | exception e when storage_error e ->
          disarm ();
          diverge st ~at ~kind:"storage"
            (Printf.sprintf "insert %d: %s" k (Printexc.to_string e))))
  | W.Delete k ->
    (match st.sut.Sim_sut.delete with
     | None ->
       disarm ();
       diverge st ~at ~kind:"answer" "delete on a static structure"
     | Some del ->
       let expected = Sim_model.mem st.model k in
       (match del k with
        | present ->
          disarm ();
          apply_model ();
          if present <> expected then
            diverge st ~at ~kind:"answer"
              (Printf.sprintf "delete %d: sut %b, model %b" k present
                 expected)
        | exception Journal.Crashed ->
          st.crashes <- st.crashes + 1;
          disarm ();
          (match crash with
           | Some p when armed && crash_survives p -> apply_model ()
           | _ -> ());
          recover_now st ~at;
          sweep st ~at ~kind:"crash-visibility"
        | exception e when storage_error e ->
          disarm ();
          diverge st ~at ~kind:"storage"
            (Printf.sprintf "delete %d: %s" k (Printexc.to_string e))))

let run_lookup_batch st ~at keys =
  match keys with
  | [] -> ()
  | keys ->
    let expected = List.map (Sim_model.find st.model) keys in
    (match
       match st.sut.Sim_sut.find_batch with
       | Some batch when List.length keys > 1 -> batch keys
       | _ -> List.map st.sut.Sim_sut.find keys
     with
     | got ->
       List.iteri
         (fun i g ->
           match (List.nth_opt keys i, List.nth_opt expected i) with
           | Some k, Some e ->
             check_answer st ~at:(at + i)
               ~op_desc:(Printf.sprintf "lookup %d" k)
               g e
           | _ -> ())
         got
     | exception e when storage_error e ->
       diverge st ~at ~kind:"storage"
         (Printf.sprintf "lookup batch: %s" (Printexc.to_string e)))

let run (cfg : Sim_config.t) (schedule : Sim_schedule.t) ops =
  let data = Sim_gen.initial_data (Sim_config.gen_spec cfg) in
  let ops = Array.of_seq ops in
  let schedule = Sim_schedule.canonical schedule in
  let pre_events i =
    List.filter_map
      (function
        | Sim_schedule.Kill { at; disk } when at = i -> Some (`Kill disk)
        | Sim_schedule.Damage { at; nth } when at = i -> Some (`Damage nth)
        | Sim_schedule.Scrub { at } when at = i -> Some `Scrub
        | Sim_schedule.Net_drop { at; shard } when at = i ->
          Some (`Net { Transport.pin_shard = shard; kind = Transport.Pin_drop })
        | Sim_schedule.Net_dup { at; shard } when at = i ->
          Some (`Net { Transport.pin_shard = shard; kind = Transport.Pin_dup })
        | Sim_schedule.Net_partition { at; shard; span; symmetric }
          when at = i ->
          Some
            (`Net
               { Transport.pin_shard = shard;
                 kind = Transport.Pin_partition { span; symmetric } })
        | _ -> None)
      schedule
  in
  let crash_at i =
    List.find_map
      (function
        | Sim_schedule.Crash { at; point } when at = i -> Some point
        | _ -> None)
      schedule
  in
  let has_event i = pre_events i <> [] || crash_at i <> None in
  match Sim_sut.build cfg ~data with
  | exception e ->
    { config = cfg; schedule; ops_run = 0; crashes = 0; recoveries = 0;
      divergences =
        [ { at = -1; kind = "build";
            detail = "building the system failed: " ^ Printexc.to_string e }
        ] }
  | sut ->
    let st =
      { cfg; sut; model = Sim_model.of_data data; ops_run = 0; crashes = 0;
        recoveries = 0; divergences = [] }
    in
    let n = Array.length ops in
    let i = ref 0 in
    (* Any exception the per-op handlers don't classify (a decode
       failing on data it cannot parse, an overflow, a harness bug) is
       itself a case failure: record it and stop this case rather than
       aborting the whole exploration. *)
    (try
    while !i < n do
      let at = !i in
      List.iter
        (function
          | `Kill disk -> fire_kill st disk
          | `Damage nth -> fire_damage st nth
          | `Scrub -> fire_scrub st ~at
          | `Net pin -> fire_net st ~at pin)
        (pre_events at);
      (* batch maximal runs of event-free consecutive lookups so the
         engine path sees real multi-request batches *)
      let rec lookups acc j =
        if j < n && not (j > at && has_event j) then
          match ops.(j) with
          | W.Lookup k -> lookups (k :: acc) (j + 1)
          | _ -> (List.rev acc, j)
        else (List.rev acc, j)
      in
      (match ops.(at) with
       | W.Lookup _ when crash_at at = None ->
         let keys, next = lookups [] at in
         run_lookup_batch st ~at keys;
         st.ops_run <- st.ops_run + List.length keys;
         i := next
       | op ->
         (match op with
          | W.Lookup k ->
            (* a (vacuous) crash event pinned to a lookup: run it singly *)
            (match st.sut.Sim_sut.find k with
             | got -> check_answer st ~at ~op_desc:(Printf.sprintf "lookup %d" k)
                        got (Sim_model.find st.model k)
             | exception e when storage_error e ->
               diverge st ~at ~kind:"storage"
                 (Printf.sprintf "lookup %d: %s" k (Printexc.to_string e)))
          | _ -> run_update st ~at ~crash:(crash_at at) op);
         st.ops_run <- st.ops_run + 1;
         i := at + 1)
    done;
    (* post-run invariants *)
    sweep st ~at:n ~kind:"sweep";
    (match sut.Sim_sut.recover with
     | Some recover ->
       (match recover () with
        | `Clean -> ()
        | `Discarded ->
          diverge st ~at:n ~kind:"recover"
            "post-run recovery found an uncommitted log"
        | `Replayed k ->
          diverge st ~at:n ~kind:"recover"
            (Printf.sprintf "post-run recovery replayed %d blocks" k));
       sweep st ~at:n ~kind:"recover"
     | None -> ());
    if cfg.replicas > 1 || cfg.integrity then fire_scrub st ~at:n
    with e ->
      diverge st ~at:!i ~kind:"exception" (Printexc.to_string e));
    { config = cfg; schedule; ops_run = st.ops_run; crashes = st.crashes;
      recoveries = st.recoveries;
      divergences = List.rev st.divergences }
