module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Fault = Pdm_sim.Fault
module Engine = Pdm_engine.Engine
module Basic = Pdm_dictionary.Basic_dict
module Ops = Pdm_dictionary.One_probe_static
module Opd = Pdm_dictionary.One_probe_dynamic
module Cascade = Pdm_dictionary.Dynamic_cascade
module Checksum = Pdm_dictionary.Codec.Checksum
module Cluster = Pdm_cluster.Cluster
module Store = Pdm_io.Store
module Topology = Pdm_cluster.Topology
module Transport = Pdm_cluster.Transport

type t = {
  name : string;
  machine : int Pdm.t;
  find : int -> Bytes.t option;
  find_batch : (int list -> Bytes.t option list) option;
  insert : (int -> Bytes.t -> unit) option;
  delete : (int -> bool) option;
  set_crash : (Journal.crash_point option -> unit) option;
  recover : (unit -> [ `Clean | `Discarded | `Replayed of int ]) option;
  kill_shard : (int -> unit) option;
      (** Cluster adapters: fail-stop shard [i mod shard count]. The
          runner routes schedule [Kill] events here when present
          (shard-level fail-stop), to the machine otherwise. *)
  inject_net : (Transport.pin -> unit) option;
      (** Cluster adapters with a transport: pin a message fault at the
          next op. The runner routes [Net_*] schedule events here;
          schedules carrying them are invalid for other adapters. *)
}

(* The machine-storage factory a config implies: "mem" resolves to
   None inside the factory, so every construction site can thread it
   unconditionally. Non-mem kinds get a fresh scratch directory per
   machine (removed at process exit). *)
let storage_factory (cfg : Sim_config.t) =
  match Store.kind_of_string cfg.backend with
  | Ok kind -> Store.factory (Store.spec kind)
  | Error m -> invalid_arg ("Sim_sut: " ^ m)

let basic_degree = 6
let static_degree = 9

let fault_spec (cfg : Sim_config.t) =
  if cfg.transient <= 0.0 && cfg.straggle <= 1 then None
  else
    let transient =
      if cfg.transient > 0.0 then
        List.init basic_degree (fun d -> (d, cfg.transient))
      else []
    in
    let stragglers = if cfg.straggle > 1 then [ (1, cfg.straggle) ] else [] in
    Some (Fault.spec ~seed:cfg.seed ~max_retries:12 ~transient ~stragglers ())

(* Route every lookup through a batched engine in front of the probe
   plan. Updates stay on the direct per-key path (the engine's cache is
   write-invalidated by the machine's listener, so the two stay
   coherent); the runner interleaves them in program order. *)
let engine_wrap ~cache_blocks (dict : Engine.dict) base =
  let config = { Engine.max_batch = 16; deadline_rounds = 2; cache_blocks } in
  let eng = Engine.create ~config dict in
  let run keys =
    let ids = List.map (fun k -> Engine.submit eng (Engine.Lookup k)) keys in
    Engine.drain eng;
    let outs = Engine.take_outcomes eng in
    List.map
      (fun id ->
        match List.find_opt (fun (o : Engine.outcome) -> o.id = id) outs with
        | Some o -> o.Engine.value
        | None -> invalid_arg "Sim_sut: engine dropped a lookup")
      ids
  in
  let find k =
    match run [ k ] with
    | [ v ] -> v
    | _ -> invalid_arg "Sim_sut: engine answer arity"
  in
  { base with find; find_batch = Some run }

let build_basic (cfg : Sim_config.t) =
  let bcfg =
    Basic.plan ~universe:cfg.universe ~capacity:cfg.capacity
      ~block_words:cfg.block_words ~degree:basic_degree
      ~value_bytes:cfg.value_bytes ~seed:cfg.seed ()
  in
  let machine =
    Pdm.create ?faults:(fault_spec cfg) ~factory:(storage_factory cfg)
      ?integrity:(if cfg.integrity then Some Checksum.integrity else None)
      ~replicas:cfg.replicas ~spares:cfg.spares ~disks:basic_degree
      ~block_size:cfg.block_words ~blocks_per_disk:(Basic.blocks_per_disk bcfg)
      ()
  in
  let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 bcfg in
  { name = ""; machine; find = Basic.find d; find_batch = None;
    insert = Some (Basic.insert d); delete = Some (Basic.delete d);
    set_crash = None; recover = None; kill_shard = None; inject_net = None }

let build_static (cfg : Sim_config.t) ~data =
  let scfg =
    { Ops.universe = cfg.universe; capacity = Array.length data;
      degree = static_degree; sigma_bits = 8 * cfg.value_bytes; v_factor = 3;
      case = Ops.Case_b; seed = cfg.seed }
  in
  let t =
    Ops.build ~replicas:cfg.replicas ~spares:cfg.spares
      ~factory:(storage_factory cfg) ~block_words:cfg.block_words scfg data
  in
  let base =
    { name = ""; machine = Ops.machine t; find = Ops.find t; find_batch = None;
      insert = None; delete = None; set_crash = None; recover = None;
      kill_shard = None; inject_net = None }
  in
  if not cfg.engine then base
  else
    engine_wrap ~cache_blocks:cfg.cache_blocks
      { Engine.name = "one-probe static"; machine = Ops.machine t;
        lookup =
          (fun key ->
            Engine.Fetch
              ( Ops.probe_addresses t key,
                fun blocks -> Engine.Done (Ops.find_in t key blocks) ));
        insert = None; delete = None }
      base

let build_dynamic (cfg : Sim_config.t) =
  let dcfg =
    { Opd.universe = cfg.universe; capacity = cfg.capacity; degree = 6;
      sigma_bits = 8 * cfg.value_bytes; levels = 3; v_factor = 3;
      seed = cfg.seed }
  in
  let t =
    Opd.create ~journaled:cfg.journaled ~replicas:cfg.replicas
      ~spares:cfg.spares ~factory:(storage_factory cfg)
      ~block_words:cfg.block_words dcfg
  in
  let base =
    { name = ""; machine = Opd.machine t; find = Opd.find t; find_batch = None;
      insert = Some (Opd.insert t); delete = Some (Opd.delete t);
      set_crash = (if cfg.journaled then Some (Opd.set_crash t) else None);
      recover = (if cfg.journaled then Some (fun () -> Opd.recover t) else None);
      kill_shard = None; inject_net = None }
  in
  if not cfg.engine then base
  else
    engine_wrap ~cache_blocks:cfg.cache_blocks
      { Engine.name = "one-probe dynamic"; machine = Opd.machine t;
        lookup =
          (fun key ->
            Engine.Fetch
              ( Opd.probe_addresses t key,
                fun blocks -> Engine.Done (Opd.find_in t key blocks) ));
        insert = Some (Opd.insert t); delete = Some (Opd.delete t) }
      base

let build_cascade (cfg : Sim_config.t) =
  let ccfg =
    { Cascade.universe = cfg.universe; capacity = cfg.capacity; degree = 15;
      sigma_bits = 8 * cfg.value_bytes; epsilon = 1.0; v_factor = 3;
      seed = cfg.seed }
  in
  let t =
    Cascade.create ~journaled:cfg.journaled ~replicas:cfg.replicas
      ~spares:cfg.spares ~factory:(storage_factory cfg)
      ~block_words:cfg.block_words ccfg
  in
  let base =
    { name = ""; machine = Cascade.machine t; find = Cascade.find t;
      find_batch = None; insert = Some (Cascade.insert t);
      delete = Some (Cascade.delete t);
      set_crash = (if cfg.journaled then Some (Cascade.set_crash t) else None);
      recover =
        (if cfg.journaled then Some (fun () -> Cascade.recover t) else None);
      kill_shard = None; inject_net = None }
  in
  if not cfg.engine then base
  else
    engine_wrap ~cache_blocks:cfg.cache_blocks
      { Engine.name = "cascade"; machine = Cascade.machine t;
        lookup =
          (fun key ->
            Engine.Fetch
              ( Cascade.first_round_addresses t key,
                fun blocks ->
                  match Cascade.membership_in t key blocks with
                  | None -> Engine.Done None
                  | Some (1, head) ->
                    Engine.Done (Cascade.decode_in t key ~level:1 ~head blocks)
                  | Some (level, head) ->
                    Engine.Fetch
                      ( Cascade.level_addresses t key ~level,
                        fun blocks2 ->
                          Engine.Done
                            (Cascade.decode_in t key ~level ~head blocks2) ) ));
        insert = Some (Cascade.insert t); delete = Some (Cascade.delete t) }
      base

(* The sharded cluster: one journaled one-probe-dynamic dictionary +
   engine per shard behind deterministic rendezvous routing. The
   config's [replicas] is the cluster-level copies-per-key; shard
   machines are unreplicated. [migrate_at >= 0] arms a topology
   change: just before the stream's op #migrate_at the adapter runs a
   real add-shard migration (journaled, through the migration plan),
   so every differential schedule — including armed crash points on
   nearby client updates — brackets a live migration. *)
let build_cluster (cfg : Sim_config.t) =
  let topo = Topology.standard ~shards:cfg.shards in
  let net =
    if not cfg.net then None
    else
      (* a generous retry budget: with drop <= 0.2 the chance a read
         exhausts 6 attempts on its last candidate is negligible, so
         clean explorations stay divergence-free on any seed *)
      Some
        (Transport.spec ~seed:cfg.seed ~drop:cfg.net_drop
           ~duplicate:cfg.net_dup ~reorder_window:cfg.net_reorder
           ~max_attempts:6
           ~hedge_after:(if cfg.net_hedge then 1 else -1)
           ~drop_tokens:cfg.buggy ())
  in
  let ccfg =
    { Cluster.default_config with
      replicas = cfg.replicas;
      (* room for every key's r copies even if the balance is off 3x *)
      shard_capacity = max 24 (3 * cfg.replicas * cfg.capacity / cfg.shards);
      universe = cfg.universe; block_words = cfg.block_words;
      value_bytes = cfg.value_bytes; journaled = cfg.journaled;
      seed = cfg.seed; net }
  in
  let c = Cluster.create ~config:ccfg topo in
  let ops_seen = ref 0 in
  let migrated = ref false in
  let tick n =
    if (not !migrated) && cfg.migrate_at >= 0 && !ops_seen >= cfg.migrate_at
    then begin
      migrated := true;
      (* the shard that would come next in the standard layout *)
      ignore
        (Cluster.add_shard c
           { Topology.id = cfg.shards; weight = 1; host = cfg.shards;
             rack = cfg.shards / 2 })
    end;
    ops_seen := !ops_seen + n
  in
  { name = ""; machine = Cluster.shard_machine c 0;
    find = (fun k -> tick 1; Cluster.find c k);
    find_batch = Some (fun ks -> tick (List.length ks); Cluster.find_batch c ks);
    insert = Some (fun k v -> tick 1; Cluster.insert c k v);
    delete = Some (fun k -> tick 1; Cluster.delete c k);
    set_crash = (if cfg.journaled then Some (Cluster.set_crash c) else None);
    recover =
      (if cfg.journaled then Some (fun () -> Cluster.recover c) else None);
    kill_shard =
      Some
        (fun i ->
          let ids = Cluster.shard_ids c in
          match List.nth_opt ids (i mod List.length ids) with
          | Some id -> Cluster.kill_shard c id
          | None -> ());
    inject_net =
      (if cfg.net then Some (Cluster.inject_net c) else None) }

(* The deliberately buggy adapter: every third journaled update that is
   asked to survive a crash just past its commit point instead crashes
   just before it — i.e. the adapter drops the commit record. Invisible
   on crash-free runs; only systematic crash-schedule exploration sees
   the update vanish on recovery. *)
let seeded_bug sut =
  match sut.set_crash with
  | None -> invalid_arg "Sim_sut.seeded_bug: dictionary is not journaled"
  | Some set_crash ->
    let updates = ref 0 in
    let insert =
      Option.map (fun ins k v -> incr updates; ins k v) sut.insert
    in
    let delete = Option.map (fun del k -> incr updates; del k) sut.delete in
    let set_crash p =
      match p with
      | Some Journal.After_commit when (!updates + 1) mod 3 = 0 ->
        set_crash (Some Journal.After_log)
      | p -> set_crash p
    in
    { sut with insert; delete; set_crash = Some set_crash }

let build (cfg : Sim_config.t) ~data =
  (match Sim_config.validate cfg with
   | Ok () -> ()
   | Error m -> invalid_arg ("Sim_sut.build: " ^ m));
  let base =
    match cfg.sut with
    | Sim_config.Basic -> build_basic cfg
    | Sim_config.One_probe_static -> build_static cfg ~data
    | Sim_config.One_probe_dynamic -> build_dynamic cfg
    | Sim_config.Dynamic_cascade -> build_cascade cfg
    | Sim_config.Cluster -> build_cluster cfg
  in
  (* on a cluster with a transport, [buggy] is the token-dropping
     control wired directly into the transport spec — the journal
     commit-dropping wrapper is the non-net seeded bug *)
  let base =
    if cfg.buggy && not (cfg.sut = Sim_config.Cluster && cfg.net) then
      seeded_bug base
    else base
  in
  let base =
    if Sim_config.is_static cfg then base
    else
      (* dynamic structures start empty: load the static pre-population
         through the ordinary insert path *)
      (match base.insert with
       | None -> base
       | Some ins ->
         Array.iter (fun (k, v) -> ins k v) data;
         base)
  in
  { base with name = Sim_config.describe cfg }
