(* pdm-lint CLI.

   Usage: pdm_lint [--json] [--rules R1,R3] [--disable R4]
                   [--allow-peek MODULE] [--report FILE] PATH...

   Exit 0 when clean, 1 when findings, 2 on usage/parse errors. *)

module Lint = Pdm_lint_core.Lint

let usage () =
  prerr_endline
    "usage: pdm_lint [--json] [--rules R1,R2] [--disable R3] \
     [--allow-peek MODULE] [--report FILE] PATH...";
  prerr_endline "  --json           emit findings as a JSON array";
  prerr_endline "  --rules LIST     enable only these rules (comma-separated)";
  prerr_endline "  --disable LIST   drop rules from the enabled set";
  prerr_endline
    "  --allow-peek M   add module basename M to the Pdm.peek allowlist";
  prerr_endline
    "  --report FILE    write the R6 shared-state JSON report to FILE";
  exit 2

let parse_rules s =
  List.map
    (fun tok ->
      match Lint.rule_of_string (String.trim tok) with
      | Some r -> r
      | None ->
        Printf.eprintf "pdm_lint: unknown rule %S\n" tok;
        usage ())
    (String.split_on_char ',' s)

let () =
  let json = ref false in
  let enabled = ref Lint.all_rules in
  let allow_peek = ref Lint.default_peek_allowlist in
  let report_file = ref None in
  let paths = ref [] in
  let rec go = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      go rest
    | "--rules" :: spec :: rest ->
      enabled := parse_rules spec;
      go rest
    | "--disable" :: spec :: rest ->
      let off = parse_rules spec in
      enabled := List.filter (fun r -> not (List.mem r off)) !enabled;
      go rest
    | "--allow-peek" :: m :: rest ->
      allow_peek := m :: !allow_peek;
      go rest
    | "--report" :: file :: rest ->
      report_file := Some file;
      go rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "pdm_lint: unknown option %s\n" arg;
      usage ()
    | path :: rest ->
      paths := path :: !paths;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let paths = if !paths = [] then [ "lib" ] else List.rev !paths in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "pdm_lint: no such path %s\n" p;
        usage ()
      end)
    paths;
  let config =
    { Lint.default_config with
      Lint.enabled = !enabled;
      peek_allowlist = !allow_peek }
  in
  let { Lint.a_findings = findings; a_report } =
    Lint.analyze_paths ~config paths
  in
  (match !report_file, a_report with
   | Some file, Some report ->
     let oc = open_out_bin file in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc report)
   | Some file, None ->
     Printf.eprintf
       "pdm_lint: --report %s ignored (R6 is not in the enabled set)\n" file
   | None, _ -> ());
  if !json then print_endline (Lint.to_json findings)
  else begin
    List.iter (fun f -> print_endline (Lint.to_text f)) findings;
    if findings <> [] then
      Printf.eprintf "pdm_lint: %d finding(s)\n" (List.length findings)
  end;
  exit (Lint.exit_code findings)
