(* Command-line driver: run any experiment from DESIGN.md's index
   individually, or the whole suite. *)

open Cmdliner
(* pdm-lint: allow R4 — the CLI is the experiments library's front end
   and exposes every experiment driver and its sizing constants; the
   subcommand table below touches nearly all of them *)
open Pdm_experiments
module Store = Pdm_io.Store

(* real-I/O backends available wherever a --backend flag appears *)
let () = Store.install ()

let resolve_backend kind =
  match String.lowercase_ascii kind with
  | "mem" -> Ok None
  | k -> Result.map Option.some (Store.factory_of_string k)

let backend_conv_doc =
  "Storage backend under the machines: $(b,mem) (default, in-memory \
   disks), $(b,file) or $(b,mmap) (real files in a fresh scratch \
   directory, removed at exit). Simulated I/O counts are identical \
   across backends; only wall time changes."

(* Output format shared by the experiment runners. *)
let emit = ref Table.print

let print_table t = !emit ?out:None t

type spec = {
  id : string;
  doc : string;
  exec :
    n:int option -> block_words:int option -> seed:int option ->
    factory:int Pdm_sim.Backend.factory option -> unit;
}

let experiments =
  [ { id = "figure1"; doc = "Figure 1: dictionary comparison table (E1)";
      exec =
        (fun ~n ~block_words ~seed ~factory:_ ->
          print_table
            (Figure1.to_table (Figure1.run ?n ?block_words ?seed ()))) };
    { id = "lemma3"; doc = "Lemma 3: deterministic load balancing (E2)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ~factory:_ ->
          print_table (Load_balance.to_table (Load_balance.run ?seed ()))) };
    { id = "lemmas45"; doc = "Lemmas 4-5: unique neighbors (E3)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ~factory:_ ->
          print_table
            (Unique_neighbors.to_table (Unique_neighbors.run ?seed ()))) };
    { id = "theorem6"; doc = "Theorem 6: one-probe static dictionary (E4)";
      exec =
        (fun ~n ~block_words ~seed ~factory:_ ->
          let ns = Option.map (fun n -> [ n ]) n in
          print_table
            (One_probe_exp.to_table
               (One_probe_exp.run ?block_words ?seed ?ns ()))) };
    { id = "theorem7"; doc = "Theorem 7: dynamic cascade (E5)";
      exec =
        (fun ~n ~block_words ~seed ~factory:_ ->
          print_table
            (Dynamic_exp.to_table (Dynamic_exp.run ?n ?block_words ?seed ()))) };
    { id = "basic41"; doc = "Section 4.1 basic dictionary across B (E6)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          Table.print (Basic_exp.to_table (Basic_exp.run ?n ?seed ()))) };
    { id = "btree"; doc = "B-tree vs dictionary on an FS workload (E7)";
      exec =
        (fun ~n ~block_words ~seed ~factory:_ ->
          let ns = Option.map (fun n -> [ n ]) n in
          print_table
            (Btree_compare.to_table
               (Btree_compare.run ?block_words ?seed ?ns ()))) };
    { id = "section5"; doc = "Section 5 semi-explicit expanders (E8)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ~factory:_ ->
          Table.print (Explicit_exp.to_table (Explicit_exp.run ?seed ()))) };
    { id = "rebuild"; doc = "Global rebuilding overhead (E9)";
      exec =
        (fun ~n ~block_words ~seed ~factory:_ ->
          print_table
            (Rebuild_exp.to_table
               (Rebuild_exp.run ?block_words ?seed ?operations:n ()))) };
    { id = "bandwidth"; doc = "Bandwidth per parallel I/O (E10)";
      exec =
        (fun ~n ~block_words ~seed ~factory:_ ->
          print_table
            (Bandwidth_exp.to_table (Bandwidth_exp.run ?n ?block_words ?seed ()))) };
    { id = "ablations"; doc = "Design-choice ablations (E11)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ~factory:_ ->
          List.iter print_table (Ablation_exp.to_tables (Ablation_exp.run ?seed ()))) };
    { id = "extensions"; doc = "Extension structures (E12)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ~factory:_ ->
          print_table (Extensions_exp.to_table (Extensions_exp.run ?seed ()))) };
    { id = "scale"; doc = "Worst-case bounds at scale (E13)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          let ns = Option.map (fun n -> [ n ]) n in
          Table.print (Scale_exp.to_table (Scale_exp.run ?seed ?ns ()))) };
    { id = "realtime"; doc = "Latency percentiles: det. vs whp (E14)";
      exec =
        (fun ~n ~block_words:_ ~seed:_ ~factory:_ ->
          print_table
            (Realtime_exp.to_table (Realtime_exp.run ?trace_ops:n ()))) };
    { id = "caching"; doc = "LRU buffer cache: who it helps (E15)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          Table.print (Cache_exp.to_table (Cache_exp.run ?n ?seed ()))) };
    { id = "faults"; doc = "Fault injection: degradation and balance (E16)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Fault_exp.to_table (Fault_exp.run ?n ?seed ()))) };
    { id = "repair"; doc = "Replication & repair: disk death survival (E17)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Repair_exp.to_table (Repair_exp.run ?n ?seed ()))) };
    { id = "engine"; doc = "Batched concurrent query engine (E18)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Engine_exp.to_table (Engine_exp.run ?n ?seed ()))) };
    { id = "cluster"; doc = "Sharded placement tier (E20)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Cluster_exp.to_table (Cluster_exp.run ?n ?seed ()))) };
    { id = "chaos"; doc = "Availability under message faults (E21)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Chaos_exp.to_table (Chaos_exp.run ?n ?seed ()))) };
    { id = "realio"; doc = "Real I/O: batched-vs-unbatched crossover (E22)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Realio_exp.to_table (Realio_exp.run ?updates:n ?seed ()))) };
    { id = "daemon"; doc = "pdm-serve daemon under chaos (E23)";
      exec =
        (fun ~n ~block_words:_ ~seed ~factory:_ ->
          print_table (Serve_exp.to_table (Serve_exp.run ?n ?seed ()))) } ]

(* Storage and cluster failures escape as exceptions with structured
   context (disk, block, round; key, retry budget); render them as
   user errors, not crashes. *)
let describe_failure e =
  match Pdm_sim.Backend.describe e with
  | Some m -> Some m
  | None -> Pdm_cluster.Cluster.describe e

let storage_guard f =
  try f () with
  | e ->
    (match describe_failure e with
     | Some m -> `Error (false, m)
     | None -> raise e)

let run_one id ~n ~block_words ~seed ~factory =
  match List.find_opt (fun s -> s.id = id) experiments with
  | Some s ->
    storage_guard (fun () ->
        s.exec ~n ~block_words ~seed ~factory;
        `Ok ())
  | None when id = "all" ->
    storage_guard (fun () ->
        List.iter (fun s -> s.exec ~n ~block_words ~seed ~factory) experiments;
        `Ok ())
  | None ->
    `Error
      (false,
       Printf.sprintf "unknown experiment %S; try one of: all %s" id
         (String.concat " " (List.map (fun s -> s.id) experiments)))

let exp_arg =
  let doc = "Experiment id (see $(b,list)), or $(b,all)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let n_arg =
  let doc = "Number of keys (experiment-specific meaning)." in
  Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)

let block_arg =
  let doc = "Block size B in machine words." in
  Arg.(value & opt (some int) None & info [ "b"; "block-words" ] ~docv:"B" ~doc)

let seed_arg =
  let doc = "Seed for all pseudo-random choices (runs are reproducible)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Log internal events (rebuild hand-overs, cuckoo rehashes)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let csv_arg =
  let doc = "Emit CSV instead of aligned text tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let backend_arg =
  let doc =
    backend_conv_doc
    ^ " Experiments that build their machines through the shared \
       adapters (figure1) honor it; the realio experiment measures \
       both backends regardless."
  in
  Arg.(value & opt string "mem" & info [ "backend" ] ~docv:"KIND" ~doc)

let run_cmd =
  let doc = "run one experiment (or 'all')" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const (fun id n block_words seed backend csv verbose ->
             setup_logs verbose;
             if csv then emit := Table.print_csv;
             match resolve_backend backend with
             | Error m -> `Error (false, m)
             | Ok factory -> run_one id ~n ~block_words ~seed ~factory)
        $ exp_arg $ n_arg $ block_arg $ seed_arg $ backend_arg $ csv_arg
        $ verbose_arg))

let list_cmd =
  let doc = "list available experiments" in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun s -> Printf.printf "%-10s %s\n" s.id s.doc)
            experiments)
      $ const ())

let plan_cmd =
  let doc = "print the planned on-disk geometry of each dictionary" in
  let universe_arg =
    Arg.(value & opt int (1 lsl 22) & info [ "u"; "universe" ] ~docv:"U"
           ~doc:"Key universe size.")
  in
  let capacity_arg =
    Arg.(value & opt int 10_000 & info [ "n"; "capacity" ] ~docv:"N"
           ~doc:"Capacity in keys.")
  in
  let block_arg' =
    Arg.(value & opt int 64 & info [ "b"; "block-words" ] ~docv:"B"
           ~doc:"Block size in words.")
  in
  let run universe capacity block_words =
    let module Basic = Pdm_dictionary.Basic_dict in
    let module Fragmented = Pdm_dictionary.Fragmented in
    let module Cascade = Pdm_dictionary.Dynamic_cascade in
    let module Hash = Pdm_baselines.Hash_table in
    let rows = ref [] in
    let add name disks blocks note =
      rows := [ name; string_of_int disks; string_of_int blocks; note ] :: !rows
    in
    (try
       let cfg =
         Basic.plan ~universe ~capacity ~block_words ~degree:8 ~value_bytes:8
           ~seed:0 ()
       in
       add "basic (4.1)" 8
         (Basic.blocks_per_disk cfg)
         (Printf.sprintf "v = %d one-block buckets"
            (8 * cfg.Basic.buckets_per_stripe))
     with Invalid_argument m -> add "basic (4.1)" 0 0 ("infeasible: " ^ m));
    (try
       let cfg =
         Fragmented.plan ~universe ~capacity ~block_words ~degree:8
           ~sigma_bits:128 ~seed:0 ()
       in
       add "fragmented (k=d/2)" 8
         (Fragmented.blocks_per_disk cfg)
         (Printf.sprintf "v = %d, sigma = 128 bits"
            (8 * cfg.Fragmented.buckets_per_stripe))
     with Invalid_argument m -> add "fragmented" 0 0 ("infeasible: " ^ m));
    (try
       let t =
         Cascade.create ~block_words
           { Cascade.universe; capacity; degree = 15; sigma_bits = 128;
             epsilon = 1.0; v_factor = 3; seed = 0 }
       in
       add "cascade (4.3)" 30
         (Pdm_sim.Pdm.blocks_per_disk (Cascade.machine t))
         (Printf.sprintf "%d levels, %d bits total" (Cascade.levels t)
            (Cascade.space_bits t))
     with Invalid_argument m -> add "cascade" 0 0 ("infeasible: " ^ m));
    (try
       let cfg =
         Hash.plan ~universe ~capacity ~block_words ~disks:8 ~value_bytes:8
           ~seed:0 ()
       in
       add "hash table" 8 cfg.Hash.superblocks "striped, utilization 0.5"
     with Invalid_argument m -> add "hash table" 0 0 ("infeasible: " ^ m));
    print_table
      (Table.make
         ~title:
           (Printf.sprintf "Planned geometry at u = %d, n = %d, B = %d words"
              universe capacity block_words)
         ~header:[ "structure"; "disks"; "blocks/disk"; "notes" ]
         (List.rev !rows))
  in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(const run $ universe_arg $ capacity_arg $ block_arg')

(* --- trace: run a workload with per-round tracing and export JSONL --- *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Fault = Pdm_sim.Fault
module Iotrace = Pdm_sim.Trace
module Basic = Pdm_dictionary.Basic_dict

(* "transient=D:P,straggler=D:K,fail=D,retries=N" -> Fault.spec *)
let parse_fault_spec ~seed s =
  let transient = ref [] and stragglers = ref [] and fail = ref [] in
  let retries = ref None in
  let item it =
    let bad () = failwith (Printf.sprintf "bad fault item %S" it) in
    match String.index_opt it '=' with
    | None -> bad ()
    | Some i ->
      let key = String.sub it 0 i in
      let v = String.sub it (i + 1) (String.length it - i - 1) in
      let disk_colon () =
        match String.index_opt v ':' with
        | None -> bad ()
        | Some j ->
          ( String.sub v 0 j,
            String.sub v (j + 1) (String.length v - j - 1) )
      in
      (match key with
       | "transient" ->
         let d, p = disk_colon () in
         (match (int_of_string_opt d, float_of_string_opt p) with
          | Some d, Some p -> transient := (d, p) :: !transient
          | _ -> bad ())
       | "straggler" ->
         let d, k = disk_colon () in
         (match (int_of_string_opt d, int_of_string_opt k) with
          | Some d, Some k -> stragglers := (d, k) :: !stragglers
          | _ -> bad ())
       | "fail" ->
         (match int_of_string_opt v with
          | Some d -> fail := d :: !fail
          | None -> bad ())
       | "retries" ->
         (match int_of_string_opt v with
          | Some n -> retries := Some n
          | None -> bad ())
       | _ -> bad ())
  in
  if s = "" then None
  else begin
    List.iter item (String.split_on_char ',' s);
    Some
      (Fault.spec ~seed ?max_retries:!retries ~transient:!transient
         ~fail:!fail ~stragglers:!stragglers ())
  end

let run_trace faults_str ops seed ring out =
  match
    let faults = parse_fault_spec ~seed faults_str in
    let universe = 1 lsl 22 and n = 2_000 and disks = 8 and block_words = 64 in
    let cfg =
      Basic.plan ~universe ~capacity:n ~block_words ~degree:disks
        ~value_bytes:8 ~seed ()
    in
    (* Build on a pristine machine, then mount the same backends under
       a traced, fault-injected machine: faults degrade service, not
       the data already on disk. *)
    let clean =
      Pdm.create ~disks ~block_size:block_words
        ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
    in
    let d0 = Basic.create ~machine:clean ~disk_offset:0 ~block_offset:0 cfg in
    let rng = Pdm_util.Prng.create seed in
    let keys =
      Pdm_util.Sampling.distinct rng ~universe ~count:n
    in
    let payload k = Pdm_workload.Payload.value_bytes_of 8 k in
    Basic.bulk_load d0 (Array.map (fun k -> (k, payload k)) keys);
    let tr = Iotrace.create ~capacity:ring () in
    (* pdm-lint: allow R1 — construction-time plumbing: the recovery
       machine mirrors the clean machine's backends so both see the
       same stored bytes; no block is moved here *)
    let machine =
      Pdm.create ~trace:tr ?faults ~backends:(fun d -> Pdm.backend clean d)
        ~disks ~block_size:block_words
        ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
    in
    let dict =
      (* The recovery scan reads every block of every stripe, so a
         permanently dead disk (or a hopeless retry budget) is fatal
         here — report it as a user error, not a crash. *)
      try Basic.recover ~machine ~disk_offset:0 ~block_offset:0 cfg with
      | Pdm_sim.Backend.Disk_failed { disk; _ } ->
        failwith
          (Printf.sprintf
             "disk %d is permanently failed: the recovery scan cannot read \
              it, and every lookup touches all %d disks. Demo degraded \
              service with transient=D:P or straggler=D:K instead (or \
              replicate: see the scrub subcommand)."
             disk disks)
      | Pdm_sim.Backend.Retries_exhausted { disk; block; attempts; _ } ->
        failwith
          (Printf.sprintf
             "recovery gave up on disk %d block %d after %d attempts; raise \
              retries=N or lower the transient probability"
             disk block attempts)
    in
    let z = Pdm_util.Zipf.create ~n ~s:1.1 in
    let failed = ref 0 and exhausted = ref 0 and wrong = ref 0 in
    for _ = 1 to ops do
      let k = keys.(Pdm_util.Zipf.sample z rng) in
      match Basic.find dict k with
      | Some v -> if v <> payload k then incr wrong
      | None -> incr wrong
      | exception Pdm_sim.Backend.Disk_failed _ -> incr failed
      | exception Pdm_sim.Backend.Retries_exhausted _ -> incr exhausted
    done;
    Iotrace.export_jsonl tr out;
    (* Re-read the export as a stream — one event in memory at a time,
       so the same code path handles multi-million-round files. *)
    let t_reads = Array.make disks 0 and t_writes = Array.make disks 0 in
    let event_count = ref 0 and degraded = ref 0 and retries = ref 0 in
    (match
       Iotrace.iter_jsonl out (fun e ->
           incr event_count;
           if e.Iotrace.degraded then incr degraded;
           retries := !retries + e.Iotrace.retries;
           let into =
             match e.Iotrace.op with
             | Iotrace.Read -> t_reads
             | Iotrace.Write -> t_writes
           in
           Array.iteri
             (fun d n -> if d < disks then into.(d) <- into.(d) + n)
             e.Iotrace.per_disk)
     with
     | () -> ()
     | exception Iotrace.Malformed_line err ->
       failwith
         (Format.asprintf "re-reading the exported trace: %a"
            Iotrace.pp_parse_error err));
    let s = Stats.snapshot (Pdm.stats machine) in
    let pad a i = if i < Array.length a then a.(i) else 0 in
    let consistent = ref (Iotrace.dropped tr = 0) in
    let rows =
      List.init disks (fun d ->
          let tr_r = pad t_reads d and tr_w = pad t_writes d in
          let st_r = pad s.Stats.disk_reads d
          and st_w = pad s.Stats.disk_writes d in
          if Iotrace.dropped tr = 0 && (tr_r <> st_r || tr_w <> st_w) then
            consistent := false;
          [ string_of_int d; string_of_int tr_r; string_of_int tr_w;
            string_of_int st_r; string_of_int st_w ])
    in
    let degraded = !degraded and retries = !retries in
    print_table
      (Table.make
         ~title:
           (Printf.sprintf
              "I/O trace: %d lookups, %d rounds executed (%d recorded, %d \
               dropped from ring of %d)"
              ops (Pdm.rounds_total machine) (Iotrace.recorded tr)
              (Iotrace.dropped tr) ring)
         ~header:
           [ "disk"; "trace reads"; "trace writes"; "stats reads";
             "stats writes" ]
         ~notes:
           [ Printf.sprintf
               "%d degraded rounds, %d transient retries charged" degraded
               retries;
             Printf.sprintf
               "lookups: %d wrong, %d on failed disk, %d retries exhausted"
               !wrong !failed !exhausted;
             Printf.sprintf "JSONL exported to %s (%d events re-read)" out
               !event_count;
             (if !consistent then
                "round-trip check: trace per-disk totals = stats counters"
              else if Iotrace.dropped tr > 0 then
                "ring dropped events: totals are partial (raise --ring)"
              else "MISMATCH between trace totals and stats counters") ]
         rows);
    if !wrong > 0 then `Error (false, "lookups returned wrong values")
    else `Ok ()
  with
  | result -> result
  | exception Failure m -> `Error (false, m)

let trace_cmd =
  let doc = "trace a faulty workload per round and export JSONL" in
  let faults_arg =
    let doc =
      "Fault schedule: comma-separated $(b,transient=D:P) (disk D fails \
       reads with probability P), $(b,straggler=D:K) (disk D charges K \
       rounds per transfer), $(b,fail=D) (disk D permanently dead), \
       $(b,retries=N) (retry budget). Empty = fault-free."
    in
    Arg.(value & opt string "" & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let ops_arg =
    Arg.(value & opt int 1_000
         & info [ "ops" ] ~docv:"N" ~doc:"Number of lookups to trace.")
  in
  let ring_arg =
    Arg.(value & opt int 65_536
         & info [ "ring" ] ~docv:"CAP" ~doc:"Trace ring-buffer capacity.")
  in
  let out_arg =
    Arg.(value & opt string "trace.jsonl"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSONL output path.")
  in
  let seed_arg' =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for keys, workload and fault schedule.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const (fun faults ops seed ring out csv ->
             if csv then emit := Table.print_csv;
             run_trace faults ops seed ring out)
        $ faults_arg $ ops_arg $ seed_arg' $ ring_arg $ out_arg $ csv_arg))

(* --- scrub: replicated machine, injected damage, verify-and-repair --- *)

let run_scrub n seed replicas spares kill corrupt =
  match
    let universe = 1 lsl 22 and disks = 8 and block_words = 64 in
    if replicas < 1 || replicas > disks then
      failwith "replicas must be in [1, 8]";
    if spares < 0 then failwith "spares must be >= 0";
    (match kill with
     | Some d when d < 0 || d >= disks ->
       failwith (Printf.sprintf "kill: disk %d out of range [0, %d)" d disks)
     | _ -> ());
    if Option.is_some kill && replicas < 2 then
      failwith "killing a disk with r = 1 loses data; use --replicas 2";
    let cfg =
      Basic.plan ~universe ~capacity:n ~block_words ~degree:disks
        ~value_bytes:8 ~seed ()
    in
    let machine =
      Pdm.create ~disks ~block_size:block_words
        ~blocks_per_disk:(Basic.blocks_per_disk cfg) ~replicas ~spares
        ~integrity:Pdm_dictionary.Codec.Checksum.integrity ()
    in
    let dict = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
    let rng = Pdm_util.Prng.create seed in
    let keys = Pdm_util.Sampling.distinct rng ~universe ~count:n in
    let payload k = Pdm_workload.Payload.value_bytes_of 8 k in
    Basic.bulk_load dict (Array.map (fun k -> (k, payload k)) keys);
    (* Inject the damage the scrub is asked to find. *)
    let damaged = ref 0 in
    if corrupt > 0 then
      Pdm.iter_allocated machine (fun a _ ->
          if !damaged < corrupt then begin
            Pdm.damage_stored machine a ~replica:0;
            incr damaged
          end);
    Option.iter (fun d -> Pdm.kill_disk machine d) kill;
    let report = Pdm.scrub machine in
    (* Every key must still read back correctly after repair. *)
    let wrong = ref 0 and unavailable = ref 0 in
    Array.iter
      (fun k ->
        match Basic.find dict k with
        | Some v -> if v <> payload k then incr wrong
        | None -> incr wrong
        | exception e when Pdm_sim.Backend.describe e <> None ->
          incr unavailable)
      keys;
    let i = string_of_int in
    print_table
      (Table.make
         ~title:
           (Printf.sprintf
              "Scrub: n = %d keys on %d disks, r = %d, %d spare(s)%s%s"
              n disks replicas spares
              (match kill with
               | Some d -> Printf.sprintf ", disk %d killed" d
               | None -> "")
              (if !damaged > 0 then
                 Printf.sprintf ", %d replicas corrupted" !damaged
               else ""))
         ~header:[ "metric"; "count" ]
         ~notes:
           [ Printf.sprintf
               "post-scrub check over all %d keys: %d wrong, %d unavailable"
               n !wrong !unavailable;
             Printf.sprintf
               "repair budget: %d scan + %d repair parallel I/Os"
               report.Pdm.scan_rounds report.Pdm.repair_rounds ]
         [ [ "logical blocks scanned"; i report.Pdm.scanned_blocks ];
           [ "replicas intact"; i report.Pdm.intact_replicas ];
           [ "replicas corrupt"; i report.Pdm.corrupt_replicas ];
           [ "replicas missing (dead disk)"; i report.Pdm.missing_replicas ];
           [ "replicas repaired"; i report.Pdm.repaired_replicas ];
           [ "... of which remapped to spares"; i report.Pdm.remapped_replicas ];
           [ "replicas unrepairable"; i report.Pdm.unrepairable_replicas ];
           [ "blocks lost (no intact copy)"; i report.Pdm.lost_blocks ] ]);
    if !wrong > 0 || !unavailable > 0 then
      `Error (false, "post-scrub verification failed")
    else if report.Pdm.lost_blocks > 0 then
      `Error (false, "scrub found unrecoverable blocks")
    else `Ok ()
  with
  | result -> result
  | exception Failure m -> `Error (false, m)
  | exception e when Pdm_sim.Backend.describe e <> None -> (
    match Pdm_sim.Backend.describe e with
    | Some m -> `Error (false, m)
    | None -> `Error (false, Printexc.to_string e))

let scrub_cmd =
  let doc = "verify checksums and re-replicate onto spares" in
  let n_arg' =
    Arg.(value & opt int 2_000
         & info [ "n" ] ~docv:"N" ~doc:"Number of keys to load.")
  in
  let seed_arg' =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for keys and payloads.")
  in
  let replicas_arg =
    Arg.(value & opt int 2 & info [ "r"; "replicas" ] ~docv:"R"
           ~doc:"Copies of every logical block, on R distinct disks.")
  in
  let spares_arg =
    Arg.(value & opt int 1 & info [ "spares" ] ~docv:"S"
           ~doc:"Hot-spare disks available as repair targets.")
  in
  let kill_arg =
    Arg.(value & opt (some int) None & info [ "kill" ] ~docv:"D"
           ~doc:"Kill disk D before scrubbing.")
  in
  let corrupt_arg =
    Arg.(value & opt int 16 & info [ "corrupt" ] ~docv:"K"
           ~doc:"Silently corrupt one replica of K blocks before scrubbing.")
  in
  Cmd.v
    (Cmd.info "scrub" ~doc)
    Term.(
      ret
        (const (fun n seed replicas spares kill corrupt csv ->
             if csv then emit := Table.print_csv;
             run_scrub n seed replicas spares kill corrupt)
        $ n_arg' $ seed_arg' $ replicas_arg $ spares_arg $ kill_arg
        $ corrupt_arg $ csv_arg))

(* --- serve: duty-cycled simulated clients through the batched query
   engine. Structured storage errors are reported with the id of the
   request being served when they surfaced. --- *)

module Engine = Pdm_engine.Engine
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let serve_guard f =
  try f () with
  | Engine.Request_failed { id; key; error } ->
    let desc =
      match describe_failure error with
      | Some m -> m
      | None -> Printexc.to_string error
    in
    `Error
      (false, Printf.sprintf "request #%d (key %d) failed: %s" id key desc)
  | e ->
    (match describe_failure e with
     | Some m -> `Error (false, m)
     | None -> raise e)

let run_serve dict n queries clients batch deadline duty insert_frac cache
    replicas spares kill seed factory =
  if duty <= 0.0 || duty > 1.0 then
    `Error (false, "--duty must be in (0, 1]")
  else if queries < 1 || clients < 1 || n < 2 then
    `Error (false, "--requests, --clients and -n must be positive")
  else
    serve_guard @@ fun () ->
    let payload k = Common.value_bytes_of 8 k in
    let scale = { Adapters.default_scale with capacity = n; seed } in
    let members, _ =
      Sampling.disjoint_pair (Prng.create seed)
        ~universe:scale.Adapters.universe ~count:n
    in
    (* Dynamic structures start half full; engine-served inserts draw
       fresh keys from the other half (capacity is never exceeded). *)
    let prepop = Array.sub members 0 (n / 2) in
    let fresh = ref (Array.to_list (Array.sub members (n / 2) (n - (n / 2)))) in
    let ad, insert_frac =
      match dict with
      | "static" ->
        let data = Array.map (fun k -> (k, payload k)) members in
        ( Adapters.engine_one_probe_static ~scale ~replicas ~spares ?factory
            ~data (),
          0.0 )
      | "dynamic" | "cascade" ->
        let a =
          if dict = "dynamic" then
            Adapters.engine_one_probe_dynamic ~scale ~replicas ~spares
              ?factory ()
          else Adapters.engine_cascade ~scale ~replicas ~spares ?factory ()
        in
        let ins =
          match a.Adapters.engine_dict.Engine.insert with
          | Some f -> f
          | None -> invalid_arg (dict ^ ": adapter exposes no insert")
        in
        Array.iter (fun k -> ins k (payload k)) prepop;
        (a, insert_frac)
      | other ->
        invalid_arg
          (Printf.sprintf "unknown dictionary %S (static, dynamic, cascade)"
             other)
    in
    let machine = ad.Adapters.engine_dict.Engine.machine in
    Option.iter (fun d -> Pdm_sim.Pdm.kill_disk machine d) kill;
    let lookup_keys = if dict = "static" then members else prepop in
    let eng =
      Engine.create
        ~config:
          { Engine.max_batch = batch; deadline_rounds = deadline;
            cache_blocks = cache }
        ad.Adapters.engine_dict
    in
    let rng = Prng.create (seed + 99) in
    let submitted = ref 0 in
    while !submitted < queries do
      for _ = 1 to clients do
        if !submitted < queries && Prng.float rng 1.0 < duty then begin
          incr submitted;
          let req =
            match !fresh with
            | k :: rest when Prng.float rng 1.0 < insert_frac ->
              fresh := rest;
              Engine.Insert (k, payload k)
            | _ ->
              Engine.Lookup
                lookup_keys.(Prng.int rng (Array.length lookup_keys))
          in
          ignore (Engine.submit eng req)
        end
      done;
      Engine.idle_round eng
    done;
    Engine.drain eng;
    let outcomes = Engine.take_outcomes eng in
    let lookups, inserts =
      List.partition
        (fun o ->
          match o.Engine.request with Engine.Lookup _ -> true | _ -> false)
        outcomes
    in
    let verified =
      List.for_all
        (fun o ->
          match o.Engine.request with
          | Engine.Lookup k -> o.Engine.value = ad.Adapters.direct_find k
          | Engine.Insert (k, v) -> ad.Adapters.direct_find k = Some v
          | Engine.Delete k -> ad.Adapters.direct_find k = None)
        outcomes
    in
    let lats =
      List.map Engine.latency outcomes |> List.sort compare |> Array.of_list
    in
    let pct p =
      if Array.length lats = 0 then 0
      else lats.(min (Array.length lats - 1)
                    (p * Array.length lats / 100))
    in
    let s = Engine.stats eng in
    let f = Table.fcell and i = Table.icell in
    print_table
      (Table.make ~title:"serve: batched query engine"
         ~header:[ "metric"; "value" ]
         ~notes:
           [ Printf.sprintf
               "%d clients at duty %.2f, batch <= %d, deadline %d rounds%s"
               clients duty batch deadline
               (match kill with
                | Some d -> Printf.sprintf ", disk %d killed" d
                | None -> "") ]
         [ [ "dictionary"; ad.Adapters.engine_dict.Engine.name ];
           [ "requests served"; i s.Engine.requests_served ];
           [ "lookups / inserts";
             Printf.sprintf "%d / %d" (List.length lookups)
               (List.length inserts) ];
           [ "batches"; i s.Engine.batches ];
           [ "engine rounds"; i s.Engine.rounds ];
           [ "fetch rounds"; i s.Engine.fetch_rounds ];
           [ "insert rounds"; i s.Engine.insert_rounds ];
           [ "blocks fetched"; i s.Engine.blocks_fetched ];
           [ "coalesced fetches"; i s.Engine.coalesced ];
           [ "cache hits"; i s.Engine.cache_hits ];
           [ "mean utilization (of D)";
             Printf.sprintf "%s / %d" (f (Engine.mean_utilization eng))
               (Pdm_sim.Pdm.disks machine) ];
           [ "utilization >= 0.8D";
             (if Engine.mean_utilization eng
                 >= 0.8 *. float_of_int (Pdm_sim.Pdm.disks machine)
              then "yes" else "no") ];
           [ "latency mean"; f (if s.Engine.requests_served = 0 then 0.0
                                else float_of_int s.Engine.total_latency
                                     /. float_of_int s.Engine.requests_served) ];
           [ "latency p50"; i (pct 50) ];
           [ "latency p95"; i (pct 95) ];
           [ "latency max"; i s.Engine.max_latency ];
           [ "answers verified"; (if verified then "yes" else "NO") ] ]);
    `Ok ()

(* serve --shards S: the same duty-cycled clients, but routed through
   the sharded placement tier — one machine+engine per shard, lookups
   scatter-gathered per round, answers checked against a reference
   table. --kill here names a shard, not a disk. *)

module Cluster = Pdm_cluster.Cluster
module Topology = Pdm_cluster.Topology
module Placement = Pdm_cluster.Placement

(* Both serve paths report failures through [serve_guard]: the engine
   path raises [Engine.Request_failed] on its own, the cluster path
   wraps each per-request call here so a failed request surfaces with
   its id and key instead of dissolving into an anonymous batch
   error. *)
let guard_request ~id ~key f =
  Engine.guard ~id ~key ~describe:describe_failure f

(* A batch failure is attributed to the oldest request in the round
   whose replica set contains the unavailable shard (falling back to
   the round's first request), mirroring the engine's oldest-waiter
   attribution. *)
let guard_batch ~topo ~seed ~replicas reqs f =
  try f ()
  with e -> (
    match describe_failure e with
    | None -> raise e
    | Some _ ->
      let failing_shard =
        match e with Cluster.Unavailable sid -> Some sid | _ -> None
      in
      let culprit =
        match failing_shard with
        | Some sid ->
          List.find_opt
            (fun (_, k) ->
              List.mem sid (Placement.replicas topo ~seed ~r:replicas k))
            reqs
        | None -> None
      in
      (match (culprit, reqs) with
       | Some (id, key), _ | None, (id, key) :: _ ->
         raise (Engine.Request_failed { id; key; error = e })
       | None, [] -> raise e))

let run_serve_cluster shards n queries clients duty insert_frac replicas
    kill seed =
  if duty <= 0.0 || duty > 1.0 then
    `Error (false, "--duty must be in (0, 1]")
  else if queries < 1 || clients < 1 || n < 2 then
    `Error (false, "--requests, --clients and -n must be positive")
  else if replicas > shards then
    `Error (false, "--replicas cannot exceed --shards")
  else
    serve_guard @@ fun () ->
    let payload k = Common.value_bytes_of 8 k in
    let config =
      { Cluster.default_config with
        Cluster.replicas;
        shard_capacity = max 256 (3 * n * replicas / shards);
        seed }
    in
    let topo = Topology.standard ~shards in
    let c = Cluster.create ~config topo in
    let members, _ =
      Sampling.disjoint_pair (Prng.create seed)
        ~universe:config.Cluster.universe ~count:n
    in
    let prepop = Array.sub members 0 (n / 2) in
    let fresh = ref (Array.to_list (Array.sub members (n / 2) (n - (n / 2)))) in
    let reference = Hashtbl.create n in
    Array.iter
      (fun k ->
        Cluster.insert c k (payload k);
        Hashtbl.replace reference k (payload k))
      prepop;
    Option.iter (fun sid -> Cluster.kill_shard c sid) kill;
    let rng = Prng.create (seed + 99) in
    let submitted = ref 0 and inserts = ref 0 and lookups = ref 0 in
    let verified = ref true in
    while !submitted < queries do
      (* one client round: inserts go direct, lookups gather into one
         scatter-gather batch *)
      let round_keys = ref [] in
      for _ = 1 to clients do
        if !submitted < queries && Prng.float rng 1.0 < duty then begin
          let id = !submitted in
          incr submitted;
          match !fresh with
          | k :: rest when Prng.float rng 1.0 < insert_frac ->
            fresh := rest;
            incr inserts;
            guard_request ~id ~key:k (fun () ->
                Cluster.insert c k (payload k));
            Hashtbl.replace reference k (payload k)
          | _ ->
            incr lookups;
            round_keys :=
              (id, prepop.(Prng.int rng (Array.length prepop)))
              :: !round_keys
        end
      done;
      let reqs = List.rev !round_keys in
      let keys = List.map snd reqs in
      let answers =
        guard_batch ~topo ~seed:config.Cluster.seed ~replicas reqs
          (fun () -> Cluster.find_batch c keys)
      in
      List.iter2
        (fun (_, k) got ->
          if got <> Hashtbl.find_opt reference k then verified := false)
        reqs answers
    done;
    let st = Cluster.stats c in
    let i = Table.icell in
    print_table
      (Table.make ~title:"serve: sharded placement tier"
         ~header:[ "metric"; "value" ]
         ~notes:
           [ Printf.sprintf
               "%d clients at duty %.2f over %d shards, r = %d%s" clients
               duty shards replicas
               (match kill with
                | Some sid -> Printf.sprintf ", shard %d killed" sid
                | None -> "") ]
         [ [ "requests served"; i !submitted ];
           [ "lookups / inserts";
             Printf.sprintf "%d / %d" !lookups !inserts ];
           [ "stored keys"; i (Cluster.size c) ];
           [ "scatter-gather batches"; i st.Cluster.batches ];
           [ "batch rounds (max shard)"; i st.Cluster.batch_rounds ];
           [ "failover reads"; i st.Cluster.failovers ];
           [ "shard loads";
             String.concat " "
               (List.map
                  (fun (id, sz) -> Printf.sprintf "%d:%d" id sz)
                  (Cluster.shard_sizes c)) ];
           [ "answers verified"; (if !verified then "yes" else "NO") ] ]);
    `Ok ()

let serve_cmd =
  let doc = "serve a duty-cycled client workload through the query engine" in
  let dict_arg =
    Arg.(value & opt string "static"
         & info [ "dict" ] ~docv:"DICT"
             ~doc:"Dictionary: $(b,static), $(b,dynamic) or $(b,cascade).")
  in
  let n_arg' =
    Arg.(value & opt int 1024
         & info [ "n" ] ~docv:"N" ~doc:"Capacity in keys.")
  in
  let requests_arg =
    Arg.(value & opt int 512
         & info [ "q"; "requests" ] ~docv:"Q"
             ~doc:"Total requests the clients submit.")
  in
  let clients_arg =
    Arg.(value & opt int 8
         & info [ "clients" ] ~docv:"C" ~doc:"Concurrent simulated clients.")
  in
  let batch_arg =
    Arg.(value & opt int 64
         & info [ "batch" ] ~docv:"M" ~doc:"Close a batch at M requests.")
  in
  let deadline_arg =
    Arg.(value & opt int 4
         & info [ "deadline" ] ~docv:"R"
             ~doc:"Close a batch when its oldest request has waited R rounds.")
  in
  let duty_arg =
    Arg.(value & opt float 0.5
         & info [ "duty" ] ~docv:"F"
             ~doc:"Duty cycle: probability a client submits each round.")
  in
  let insert_arg =
    Arg.(value & opt float 0.0
         & info [ "insert-fraction" ] ~docv:"F"
             ~doc:"Fraction of requests that are inserts (dynamic dicts).")
  in
  let cache_arg =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"BLOCKS"
             ~doc:"LRU cache blocks in front of the machine (0 = none).")
  in
  let replicas_arg =
    Arg.(value & opt int 1
         & info [ "r"; "replicas" ] ~docv:"R" ~doc:"Replicas per block.")
  in
  let spares_arg =
    Arg.(value & opt int 0
         & info [ "spares" ] ~docv:"S" ~doc:"Hot-spare disks.")
  in
  let kill_arg =
    Arg.(value & opt (some int) None
         & info [ "kill" ] ~docv:"DISK"
             ~doc:"Kill this disk before serving (with --replicas 1 the \
                   structured failure, including the request id, is \
                   reported).")
  in
  let seed_arg' =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed.")
  in
  let shards_arg =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"S"
             ~doc:"Serve through a sharded cluster of S shards instead of \
                   a single machine (0 = single machine). With shards, \
                   $(b,--kill) names a shard and $(b,--dict), \
                   $(b,--batch), $(b,--deadline), $(b,--cache) and \
                   $(b,--spares) are ignored.")
  in
  let backend_arg' =
    Arg.(value & opt string "mem"
         & info [ "backend" ] ~docv:"KIND" ~doc:backend_conv_doc)
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const (fun dict n q clients batch deadline duty ins cache r s kill
                    seed shards backend csv ->
             if csv then emit := Table.print_csv;
             match resolve_backend backend with
             | Error m -> `Error (false, m)
             | Ok _ when shards > 0 && backend <> "mem" ->
               `Error
                 (false,
                  "--backend file|mmap serves a single machine; the \
                   sharded tier stays on memory disks")
             | Ok _ when shards > 0 ->
               run_serve_cluster shards n q clients duty ins r kill seed
             | Ok factory ->
               run_serve dict n q clients batch deadline duty ins cache r s
                 kill seed factory)
        $ dict_arg $ n_arg' $ requests_arg $ clients_arg $ batch_arg
        $ deadline_arg $ duty_arg $ insert_arg $ cache_arg $ replicas_arg
        $ spares_arg $ kill_arg $ seed_arg' $ shards_arg $ backend_arg'
        $ csv_arg))

(* --- sim: deterministic simulation testing — differential model
   checking, systematic crash-schedule exploration, shrinking, and
   bit-identical repro replay. --- *)

module Sim_config = Pdm_simtest.Sim_config
module Sim_gen = Pdm_simtest.Sim_gen
module Sim_schedule = Pdm_simtest.Sim_schedule
module Sim_run = Pdm_simtest.Sim_run
module Sim_shrink = Pdm_simtest.Sim_shrink
module Sim_explore = Pdm_simtest.Sim_explore
module Sim_repro = Pdm_simtest.Sim_repro

let sim_sanitize () =
  match Sys.getenv_opt "PDM_SANITIZE" with
  | Some ("1" | "true" | "yes") -> Pdm_sim.Pdm.set_sanitize true
  | _ -> ()

let sim_config ~sut ~engine ~cache ~journal ~replicas ~spares ~integrity
    ~buggy ~transient ~straggle ~n ~seed ~block_words ~shards ~migrate_at
    ~net ~net_drop ~net_dup ~net_reorder ~net_hedge ~backend =
  match Sim_config.sut_of_string sut with
  | None ->
    Error
      (Printf.sprintf
         "unknown sut %S (expected basic, static, dynamic, cascade or \
          cluster)" sut)
  | Some s ->
    let base = Sim_config.default s in
    let shards =
      if s = Sim_config.Cluster && shards > 0 then shards
      else base.Sim_config.shards
    in
    let cfg =
      { base with
        Sim_config.engine; cache_blocks = cache; journaled = journal;
        replicas; spares; integrity; buggy; transient; straggle;
        capacity = n; universe = max base.Sim_config.universe (8 * n); seed;
        block_words; shards; migrate_at; net; net_drop; net_dup; net_reorder;
        net_hedge; backend }
    in
    (match Sim_config.validate cfg with
     | Ok () -> Ok cfg
     | Error m -> Error m)

let print_divergences ds =
  List.iter
    (fun (d : Sim_run.divergence) ->
      Printf.printf "  divergence at op %d [%s]: %s\n" d.Sim_run.at
        d.Sim_run.kind d.Sim_run.detail)
    ds

let run_sim_run cfg ops dist repro =
  sim_sanitize ();
  match Sim_gen.dist_of_string dist with
  | None -> `Error (false, "unknown --dist (uniform, zipf[:S], adversarial)")
  | Some dist ->
    let spec = Sim_config.gen_spec ~count:ops ~dist cfg in
    let op_arr = Sim_gen.ops spec in
    let r = Sim_run.run cfg [] (Array.to_seq op_arr) in
    Printf.printf "config:  %s\nops run: %d\n" (Sim_config.describe cfg)
      r.Sim_run.ops_run;
    (match repro with
     | Some path ->
       Sim_repro.write ~path r ~ops:op_arr;
       Printf.printf "repro:   written to %s\n" path
     | None -> ());
    if Sim_run.ok r then begin
      Printf.printf "result:  PASS (0 divergences)\n";
      `Ok ()
    end
    else begin
      Printf.printf "result:  FAIL (%d divergences)\n"
        (List.length r.Sim_run.divergences);
      print_divergences r.Sim_run.divergences;
      `Error (false, "differential run diverged from the model")
    end

let run_sim_explore cfg ops dist budget repro_path =
  sim_sanitize ();
  match Sim_gen.dist_of_string dist with
  | None -> `Error (false, "unknown --dist (uniform, zipf[:S], adversarial)")
  | Some dist ->
    let o = Sim_explore.explore ~budget ~count:ops ~dist cfg in
    Printf.printf "config:         %s\n" (Sim_config.describe cfg);
    Printf.printf "ops:            %d (%s, seed %d)\n"
      (Array.length o.Sim_explore.ops)
      (Sim_gen.dist_to_string dist) cfg.Sim_config.seed;
    Printf.printf "schedule space: %d distinct\n" o.Sim_explore.total_space;
    Printf.printf "explored:       %d (%s)\n" o.Sim_explore.explored
      (if o.Sim_explore.explored = o.Sim_explore.total_space then
         "exhaustive"
       else "seeded sample");
    Printf.printf "clean:          %d\n" o.Sim_explore.clean;
    Printf.printf "divergent:      %d\n"
      (o.Sim_explore.explored - o.Sim_explore.clean);
    (match o.Sim_explore.divergent with
     | [] -> `Ok ()
     | worst :: _ ->
       Printf.printf "first failing schedule: %s\n"
         (Sim_schedule.describe worst.Sim_run.schedule);
       print_divergences worst.Sim_run.divergences;
       (match o.Sim_explore.shrunk with
        | Some s ->
          Printf.printf
            "shrunk to %d ops + %d schedule events in %d runs\n"
            (Array.length s.Sim_shrink.ops)
            (List.length s.Sim_shrink.schedule)
            s.Sim_shrink.runs_used;
          Sim_repro.write ~path:repro_path s.Sim_shrink.report
            ~ops:s.Sim_shrink.ops;
          Printf.printf "repro written to %s\n" repro_path
        | None -> ());
       `Error (false, "exploration found model divergences"))

let run_sim_replay paths =
  sim_sanitize ();
  let failures = ref 0 in
  List.iter
    (fun path ->
      match Sim_repro.replay ~path with
      | Error m ->
        incr failures;
        Printf.printf "%s: ERROR (%s)\n" path m
      | Ok (header, report, bit_identical) ->
        let pass =
          if header.Sim_repro.expected = [] then Sim_run.ok report
          else bit_identical
        in
        if pass then
          Printf.printf "%s: PASS (%s, %d ops, %d divergences, %s)\n" path
            (Sim_config.describe header.Sim_repro.config)
            header.Sim_repro.op_count
            (List.length report.Sim_run.divergences)
            (if header.Sim_repro.expected = [] then "expected clean"
             else "bit-identical replay")
        else begin
          incr failures;
          Printf.printf "%s: FAIL (%s)\n" path
            (if header.Sim_repro.expected = [] then
               "expected a clean run, got divergences"
             else "replay did not reproduce the recorded divergences");
          print_divergences report.Sim_run.divergences
        end)
    paths;
  if !failures = 0 then `Ok ()
  else `Error (false, Printf.sprintf "%d repro file(s) failed" !failures)

let sim_cmd =
  let sut_arg =
    Arg.(value & opt string "cascade"
         & info [ "sut" ] ~docv:"DICT"
             ~doc:"System under test: basic, static, dynamic, cascade or \
                   cluster.")
  in
  let shards_arg' =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"S"
             ~doc:"Cluster shard count (sut cluster only; 0 = its default).")
  in
  let migrate_arg =
    Arg.(value & opt int (-1)
         & info [ "migrate-at" ] ~docv:"OP"
             ~doc:"Add a shard after OP stream ops (sut cluster only; -1 = \
                   never).")
  in
  let engine_arg =
    Arg.(value & flag
         & info [ "engine" ]
             ~doc:"Drive lookups through the batched query engine.")
  in
  let cache_arg' =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"BLOCKS"
             ~doc:"Engine LRU cache blocks (implies --engine).")
  in
  let journal_arg =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"Write-ahead journal (dynamic/cascade, direct mode).")
  in
  let replicas_arg' =
    Arg.(value & opt int 1
         & info [ "r"; "replicas" ] ~docv:"R" ~doc:"Replicas per block.")
  in
  let spares_arg' =
    Arg.(value & opt int 0
         & info [ "spares" ] ~docv:"S" ~doc:"Hot-spare disks.")
  in
  let integrity_arg =
    Arg.(value & flag
         & info [ "integrity" ] ~doc:"Checksum envelope (basic only).")
  in
  let buggy_arg =
    Arg.(value & flag
         & info [ "buggy" ]
             ~doc:"Use the deliberately buggy adapter (drops journal \
                   commit records, or idempotency tokens under --net) — \
                   the explorer must catch it.")
  in
  let transient_arg =
    Arg.(value & opt float 0.0
         & info [ "transient" ] ~docv:"P"
             ~doc:"Transient read-fault probability (basic only).")
  in
  let straggle_arg =
    Arg.(value & opt int 1
         & info [ "straggle" ] ~docv:"K"
             ~doc:"Straggle factor on one disk (basic only).")
  in
  let n_arg' =
    Arg.(value & opt int 96
         & info [ "n" ] ~docv:"N" ~doc:"Dictionary capacity.")
  in
  let block_words_arg =
    Arg.(value & opt int 32
         & info [ "block-words" ] ~docv:"B" ~doc:"Words per block.")
  in
  let seed_arg' =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed.")
  in
  let ops_arg =
    Arg.(value & opt int 128
         & info [ "ops" ] ~docv:"COUNT" ~doc:"Ops to generate.")
  in
  let net_arg =
    Arg.(value & flag
         & info [ "net" ]
             ~doc:"Route router-shard exchanges through the deterministic \
                   message transport (sut cluster, replicas >= 2). \
                   Schedules may then pin message drops, duplicates and \
                   partitions.")
  in
  let net_drop_arg =
    Arg.(value & opt float 0.05
         & info [ "net-drop" ] ~docv:"P"
             ~doc:"Per-message loss probability under --net.")
  in
  let net_dup_arg =
    Arg.(value & opt float 0.05
         & info [ "net-dup" ] ~docv:"P"
             ~doc:"Per-delivered-write duplication probability under --net.")
  in
  let net_reorder_arg =
    Arg.(value & opt int 3
         & info [ "net-reorder" ] ~docv:"W"
             ~doc:"Duplicate redelivery window bound under --net.")
  in
  let no_hedge_arg =
    Arg.(value & flag
         & info [ "no-hedge" ]
             ~doc:"Disable hedged reads under --net: burn the whole retry \
                   budget on each replica before failing over.")
  in
  let dist_arg =
    Arg.(value & opt string "uniform"
         & info [ "dist" ] ~docv:"DIST"
             ~doc:"Key distribution: uniform, zipf[:S] or adversarial.")
  in
  let backend_arg'' =
    Arg.(value & opt string "mem"
         & info [ "backend" ] ~docv:"KIND" ~doc:backend_conv_doc)
  in
  let with_config k =
    Term.(
      const
        (fun sut engine cache journal replicas spares integrity buggy
             transient straggle n block_words seed shards migrate_at net
             net_drop net_dup net_reorder no_hedge backend ->
          let engine = engine || cache > 0 in
          match
            sim_config ~sut ~engine ~cache ~journal ~replicas ~spares
              ~integrity ~buggy ~transient ~straggle ~n ~seed ~block_words
              ~shards ~migrate_at ~net ~net_drop ~net_dup ~net_reorder
              ~net_hedge:(not no_hedge) ~backend
          with
          | Error m -> `Error (false, m)
          | Ok cfg -> k cfg)
      $ sut_arg $ engine_arg $ cache_arg' $ journal_arg $ replicas_arg'
      $ spares_arg' $ integrity_arg $ buggy_arg $ transient_arg
      $ straggle_arg $ n_arg' $ block_words_arg $ seed_arg' $ shards_arg'
      $ migrate_arg $ net_arg $ net_drop_arg $ net_dup_arg $ net_reorder_arg
      $ no_hedge_arg $ backend_arg'')
  in
  let run_cmd' =
    let doc = "one differential run (no injected faults) against the model" in
    let repro_out_arg =
      Arg.(value & opt (some string) None
           & info [ "repro" ] ~docv:"PATH"
               ~doc:"Also record the run as a repro file (clean runs \
                     included — useful for regression corpora).")
    in
    Cmd.v (Cmd.info "run" ~doc)
      Term.(
        ret
          (const (fun cfg_r ops dist repro ->
               match cfg_r with
               | `Error _ as e -> e
               | `Ok cfg -> run_sim_run cfg ops dist repro)
          $ with_config (fun cfg -> `Ok cfg)
          $ ops_arg $ dist_arg $ repro_out_arg))
  in
  let explore_cmd =
    let doc =
      "systematically explore crash/fault schedules against the model, \
       shrinking and writing a repro on divergence"
    in
    let budget_arg =
      Arg.(value & opt int 600
           & info [ "budget" ] ~docv:"K"
               ~doc:"Schedules to run (exhaustive when the space fits).")
    in
    let repro_arg =
      Arg.(value & opt string "sim-repro.jsonl"
           & info [ "repro" ] ~docv:"PATH"
               ~doc:"Where to write the shrunk repro on divergence.")
    in
    Cmd.v (Cmd.info "explore" ~doc)
      Term.(
        ret
          (const (fun cfg_r ops dist budget repro ->
               match cfg_r with
               | `Error _ as e -> e
               | `Ok cfg -> run_sim_explore cfg ops dist budget repro)
          $ with_config (fun cfg -> `Ok cfg)
          $ ops_arg $ dist_arg $ budget_arg $ repro_arg))
  in
  let replay_cmd =
    let doc = "re-execute repro files and verify them bit for bit" in
    let paths_arg =
      Arg.(non_empty & pos_all file []
           & info [] ~docv:"REPRO" ~doc:"Repro files (JSONL).")
    in
    Cmd.v (Cmd.info "replay" ~doc)
      Term.(ret (const run_sim_replay $ paths_arg))
  in
  let doc =
    "deterministic simulation testing: differential model checking, \
     crash-schedule exploration, repro replay"
  in
  Cmd.group (Cmd.info "sim" ~doc) [ run_cmd'; explore_cmd; replay_cmd ]

(* --- bench-check: guard the checked-in microbenchmark baselines ---

   Compares a fresh `bench --json` dump against a checked-in baseline
   (BENCH_core.json / BENCH_cluster.json). The deterministic columns —
   parallel I/Os and rounds — must match within the (default exact)
   tolerance on every backend. The ns column is wall clock: by default
   it is informational only (the worst drift is printed), because CI
   machines are too noisy to gate on; --ns-tolerance opts into gating
   it, for environments with stable hardware. *)
let bench_check_cmd =
  let module J = Pdm_simtest.Sim_json in
  let read_rows path =
    let parsed =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      J.of_string s
    in
    match parsed with
    | Error m -> Error (Printf.sprintf "%s: %s" path m)
    | Ok v ->
      (match J.get_list v with
       | None -> Error (Printf.sprintf "%s: expected a top-level array" path)
       | Some items ->
         let row item =
           let ns =
             match Option.bind (J.member "ns" item) J.get_float with
             | Some ns -> Some ns
             | None ->
               Option.map float_of_int
                 (Option.bind (J.member "ns" item) J.get_int)
           in
           match
             ( Option.bind (J.member "name" item) J.get_string,
               Option.bind (J.member "ios" item) J.get_int,
               Option.bind (J.member "rounds" item) J.get_int )
           with
           | Some n, Some i, Some r ->
             Ok (n, (i, r, Option.value ns ~default:0.0))
           | _ -> Error (Printf.sprintf "%s: malformed benchmark entry" path)
         in
         List.fold_left
           (fun acc item ->
             match (acc, row item) with
             | Ok rows, Ok r -> Ok (r :: rows)
             | (Error _ as e), _ | _, (Error _ as e) -> e)
           (Ok []) items
         |> Result.map List.rev)
  in
  let check baseline candidate tolerance ns_tolerance =
    match (read_rows baseline, read_rows candidate) with
    | Error m, _ | _, Error m -> `Error (false, m)
    | Ok base, Ok cand ->
      let problems = ref [] in
      let complain fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
      let within b c =
        float_of_int (abs (c - b)) <= tolerance *. float_of_int (abs b)
      in
      (* worst fractional ns drift across comparable rows, for the
         informational summary *)
      let worst_ns = ref 0.0 and worst_ns_name = ref "" in
      List.iter
        (fun (name, (bi, br, bns)) ->
          match List.assoc_opt name cand with
          | None -> complain "%s: missing from %s" name candidate
          | Some (ci, cr, cns) ->
            if not (within bi ci) then
              complain "%s: ios %d, baseline %d" name ci bi;
            if not (within br cr) then
              complain "%s: rounds %d, baseline %d" name cr br;
            if bns > 0.0 && cns > 0.0 then begin
              let drift = Float.abs (cns -. bns) /. bns in
              if drift > !worst_ns then begin
                worst_ns := drift;
                worst_ns_name := name
              end;
              match ns_tolerance with
              | Some t when drift > t ->
                complain "%s: ns %.0f, baseline %.0f (%.0f%% > %.0f%%)" name
                  cns bns (100. *. drift) (100. *. t)
              | _ -> ()
            end)
        base;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name base) then
            complain "%s: not in baseline %s" name baseline)
        cand;
      (match List.rev !problems with
       | [] ->
         Printf.printf
           "bench-check: OK (%d benchmarks, ios/rounds within %g%% of %s)\n"
           (List.length base) (100. *. tolerance) baseline;
         if !worst_ns_name <> "" then
           Printf.printf
             "bench-check: worst ns drift %.0f%% (%s)%s\n"
             (100. *. !worst_ns) !worst_ns_name
             (match ns_tolerance with
              | Some t -> Printf.sprintf ", within --ns-tolerance %g" t
              | None -> ", informational (no --ns-tolerance)");
         `Ok ()
       | ps ->
         `Error
           ( false,
             Printf.sprintf "bench-check: %d deviation(s) from %s:\n  %s"
               (List.length ps) baseline (String.concat "\n  " ps) ))
  in
  let doc =
    "compare a fresh bench --json dump against a checked-in baseline \
     (deterministic ios/rounds columns exactly; wall-clock ns is \
     informational unless --ns-tolerance is given)"
  in
  let baseline_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE" ~doc:"Checked-in baseline JSON.")
  in
  let candidate_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CANDIDATE" ~doc:"Fresh bench --json output.")
  in
  let tolerance_arg =
    Arg.(value & opt float 0.0
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:"Allowed fractional drift per ios/rounds counter \
                   (default exact).")
  in
  let ns_tolerance_arg =
    Arg.(value & opt (some float) None
         & info [ "ns-tolerance" ] ~docv:"FRAC"
             ~doc:"Also gate the wall-clock ns column, allowing this \
                   fractional drift. Without it ns is reported but \
                   never fails the check.")
  in
  Cmd.v (Cmd.info "bench-check" ~doc)
    Term.(
      ret
        (const check $ baseline_arg $ candidate_arg $ tolerance_arg
         $ ns_tolerance_arg))

let main =
  let doc =
    "deterministic dictionaries in the parallel disk model — experiment \
     driver"
  in
  Cmd.group
    (Cmd.info "pdm_dict_cli" ~version:"1.0.0" ~doc)
    [ run_cmd; list_cmd; plan_cmd; trace_cmd; scrub_cmd; serve_cmd; sim_cmd;
      bench_check_cmd ]

let () = exit (Cmd.eval main)
