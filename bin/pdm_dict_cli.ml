(* Command-line driver: run any experiment from DESIGN.md's index
   individually, or the whole suite. *)

open Cmdliner
open Pdm_experiments

(* Output format shared by the experiment runners. *)
let emit = ref Table.print

let print_table t = !emit ?out:None t

type spec = {
  id : string;
  doc : string;
  exec : n:int option -> block_words:int option -> seed:int option -> unit;
}

let experiments =
  [ { id = "figure1"; doc = "Figure 1: dictionary comparison table (E1)";
      exec =
        (fun ~n ~block_words ~seed ->
          print_table
            (Figure1.to_table (Figure1.run ?n ?block_words ?seed ()))) };
    { id = "lemma3"; doc = "Lemma 3: deterministic load balancing (E2)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ->
          print_table (Load_balance.to_table (Load_balance.run ?seed ()))) };
    { id = "lemmas45"; doc = "Lemmas 4-5: unique neighbors (E3)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ->
          print_table
            (Unique_neighbors.to_table (Unique_neighbors.run ?seed ()))) };
    { id = "theorem6"; doc = "Theorem 6: one-probe static dictionary (E4)";
      exec =
        (fun ~n ~block_words ~seed ->
          let ns = Option.map (fun n -> [ n ]) n in
          print_table
            (One_probe_exp.to_table
               (One_probe_exp.run ?block_words ?seed ?ns ()))) };
    { id = "theorem7"; doc = "Theorem 7: dynamic cascade (E5)";
      exec =
        (fun ~n ~block_words ~seed ->
          print_table
            (Dynamic_exp.to_table (Dynamic_exp.run ?n ?block_words ?seed ()))) };
    { id = "basic41"; doc = "Section 4.1 basic dictionary across B (E6)";
      exec =
        (fun ~n ~block_words:_ ~seed ->
          Table.print (Basic_exp.to_table (Basic_exp.run ?n ?seed ()))) };
    { id = "btree"; doc = "B-tree vs dictionary on an FS workload (E7)";
      exec =
        (fun ~n ~block_words ~seed ->
          let ns = Option.map (fun n -> [ n ]) n in
          print_table
            (Btree_compare.to_table
               (Btree_compare.run ?block_words ?seed ?ns ()))) };
    { id = "section5"; doc = "Section 5 semi-explicit expanders (E8)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ->
          Table.print (Explicit_exp.to_table (Explicit_exp.run ?seed ()))) };
    { id = "rebuild"; doc = "Global rebuilding overhead (E9)";
      exec =
        (fun ~n ~block_words ~seed ->
          print_table
            (Rebuild_exp.to_table
               (Rebuild_exp.run ?block_words ?seed ?operations:n ()))) };
    { id = "bandwidth"; doc = "Bandwidth per parallel I/O (E10)";
      exec =
        (fun ~n ~block_words ~seed ->
          print_table
            (Bandwidth_exp.to_table (Bandwidth_exp.run ?n ?block_words ?seed ()))) };
    { id = "ablations"; doc = "Design-choice ablations (E11)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ->
          List.iter print_table (Ablation_exp.to_tables (Ablation_exp.run ?seed ()))) };
    { id = "extensions"; doc = "Extension structures (E12)";
      exec =
        (fun ~n:_ ~block_words:_ ~seed ->
          print_table (Extensions_exp.to_table (Extensions_exp.run ?seed ()))) };
    { id = "scale"; doc = "Worst-case bounds at scale (E13)";
      exec =
        (fun ~n ~block_words:_ ~seed ->
          let ns = Option.map (fun n -> [ n ]) n in
          Table.print (Scale_exp.to_table (Scale_exp.run ?seed ?ns ()))) };
    { id = "realtime"; doc = "Latency percentiles: det. vs whp (E14)";
      exec =
        (fun ~n ~block_words:_ ~seed:_ ->
          print_table
            (Realtime_exp.to_table (Realtime_exp.run ?trace_ops:n ()))) };
    { id = "caching"; doc = "LRU buffer cache: who it helps (E15)";
      exec =
        (fun ~n ~block_words:_ ~seed ->
          Table.print (Cache_exp.to_table (Cache_exp.run ?n ?seed ()))) } ]

let run_one id ~n ~block_words ~seed =
  match List.find_opt (fun s -> s.id = id) experiments with
  | Some s ->
    s.exec ~n ~block_words ~seed;
    `Ok ()
  | None when id = "all" ->
    List.iter (fun s -> s.exec ~n ~block_words ~seed) experiments;
    `Ok ()
  | None ->
    `Error
      (false,
       Printf.sprintf "unknown experiment %S; try one of: all %s" id
         (String.concat " " (List.map (fun s -> s.id) experiments)))

let exp_arg =
  let doc = "Experiment id (see $(b,list)), or $(b,all)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let n_arg =
  let doc = "Number of keys (experiment-specific meaning)." in
  Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)

let block_arg =
  let doc = "Block size B in machine words." in
  Arg.(value & opt (some int) None & info [ "b"; "block-words" ] ~docv:"B" ~doc)

let seed_arg =
  let doc = "Seed for all pseudo-random choices (runs are reproducible)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Log internal events (rebuild hand-overs, cuckoo rehashes)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let csv_arg =
  let doc = "Emit CSV instead of aligned text tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let run_cmd =
  let doc = "run one experiment (or 'all')" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const (fun id n block_words seed csv verbose ->
             setup_logs verbose;
             if csv then emit := Table.print_csv;
             run_one id ~n ~block_words ~seed)
        $ exp_arg $ n_arg $ block_arg $ seed_arg $ csv_arg $ verbose_arg))

let list_cmd =
  let doc = "list available experiments" in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun s -> Printf.printf "%-10s %s\n" s.id s.doc)
            experiments)
      $ const ())

let plan_cmd =
  let doc = "print the planned on-disk geometry of each dictionary" in
  let universe_arg =
    Arg.(value & opt int (1 lsl 22) & info [ "u"; "universe" ] ~docv:"U"
           ~doc:"Key universe size.")
  in
  let capacity_arg =
    Arg.(value & opt int 10_000 & info [ "n"; "capacity" ] ~docv:"N"
           ~doc:"Capacity in keys.")
  in
  let block_arg' =
    Arg.(value & opt int 64 & info [ "b"; "block-words" ] ~docv:"B"
           ~doc:"Block size in words.")
  in
  let run universe capacity block_words =
    let module Basic = Pdm_dictionary.Basic_dict in
    let module Fragmented = Pdm_dictionary.Fragmented in
    let module Cascade = Pdm_dictionary.Dynamic_cascade in
    let module Hash = Pdm_baselines.Hash_table in
    let rows = ref [] in
    let add name disks blocks note =
      rows := [ name; string_of_int disks; string_of_int blocks; note ] :: !rows
    in
    (try
       let cfg =
         Basic.plan ~universe ~capacity ~block_words ~degree:8 ~value_bytes:8
           ~seed:0 ()
       in
       add "basic (4.1)" 8
         (Basic.blocks_per_disk cfg)
         (Printf.sprintf "v = %d one-block buckets"
            (8 * cfg.Basic.buckets_per_stripe))
     with Invalid_argument m -> add "basic (4.1)" 0 0 ("infeasible: " ^ m));
    (try
       let cfg =
         Fragmented.plan ~universe ~capacity ~block_words ~degree:8
           ~sigma_bits:128 ~seed:0 ()
       in
       add "fragmented (k=d/2)" 8
         (Fragmented.blocks_per_disk cfg)
         (Printf.sprintf "v = %d, sigma = 128 bits"
            (8 * cfg.Fragmented.buckets_per_stripe))
     with Invalid_argument m -> add "fragmented" 0 0 ("infeasible: " ^ m));
    (try
       let t =
         Cascade.create ~block_words
           { Cascade.universe; capacity; degree = 15; sigma_bits = 128;
             epsilon = 1.0; v_factor = 3; seed = 0 }
       in
       add "cascade (4.3)" 30
         (Pdm_sim.Pdm.blocks_per_disk (Cascade.machine t))
         (Printf.sprintf "%d levels, %d bits total" (Cascade.levels t)
            (Cascade.space_bits t))
     with Invalid_argument m -> add "cascade" 0 0 ("infeasible: " ^ m));
    (try
       let cfg =
         Hash.plan ~universe ~capacity ~block_words ~disks:8 ~value_bytes:8
           ~seed:0 ()
       in
       add "hash table" 8 cfg.Hash.superblocks "striped, utilization 0.5"
     with Invalid_argument m -> add "hash table" 0 0 ("infeasible: " ^ m));
    print_table
      (Table.make
         ~title:
           (Printf.sprintf "Planned geometry at u = %d, n = %d, B = %d words"
              universe capacity block_words)
         ~header:[ "structure"; "disks"; "blocks/disk"; "notes" ]
         (List.rev !rows))
  in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(const run $ universe_arg $ capacity_arg $ block_arg')

let main =
  let doc =
    "deterministic dictionaries in the parallel disk model — experiment \
     driver"
  in
  Cmd.group
    (Cmd.info "pdm_dict_cli" ~version:"1.0.0" ~doc)
    [ run_cmd; list_cmd; plan_cmd ]

let () = exit (Cmd.eval main)
