(* pdm-serve: the multicore TCP daemon over the deterministic data
   plane (DESIGN.md §15). All socket work lives in Pdm_server; this
   binary only parses flags, prints the bound port and wires SIGTERM/
   SIGINT to the graceful stop (drain every admitted frame, join the
   worker domains, exit 0). *)

module Server = Pdm_server.Server
module Data_plane = Pdm_server.Data_plane

open Cmdliner

let run_serve port shards domains capacity replicas spares seed batch
    queue_cap =
  if shards < 1 then `Error (false, "--shards must be >= 1")
  else if domains < 1 then `Error (false, "--domains must be >= 1")
  else begin
    let plane =
      { Data_plane.default_config with
        Data_plane.shards;
        shard_capacity = max 8 (capacity / shards);
        replicas; spares; seed; max_batch = max 1 batch }
    in
    let t = Server.create ~port { Server.plane; domains; queue_cap } in
    let stop _ = Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.printf "pdm-serve listening on %d (%d shards, %d domains)\n%!"
      (Server.port t) shards domains;
    Server.run t;
    let c = Server.counters t in
    Printf.printf
      "pdm-serve stopped: %d conns, %d frames, %d busy, %d unavailable, \
       %d protocol errors\n%!"
      c.Server.conns c.Server.frames c.Server.busy c.Server.unavailable
      c.Server.proto_errors;
    `Ok ()
  end

let port_arg =
  Arg.(value & opt int 0
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port to bind on loopback; 0 picks an ephemeral port \
                 (printed on stdout).")

let shards_arg =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"S" ~doc:"Shards (dictionary + engine).")

let domains_arg =
  Arg.(value & opt int 2
       & info [ "domains" ] ~docv:"W"
           ~doc:"Worker domains; shard s is owned by domain s mod W.")

let capacity_arg =
  Arg.(value & opt int 4096
       & info [ "n"; "capacity" ] ~docv:"N"
           ~doc:"Total key capacity, split across shards.")

let replicas_arg =
  Arg.(value & opt int 2
       & info [ "replicas" ] ~docv:"R"
           ~doc:"Disk-level replicas inside each shard.")

let spares_arg =
  Arg.(value & opt int 1
       & info [ "spares" ] ~docv:"H"
           ~doc:"Hot-spare disks per shard machine.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.")

let batch_arg =
  Arg.(value & opt int 64
       & info [ "batch" ] ~docv:"M" ~doc:"Per-shard engine batch size.")

let queue_cap_arg =
  Arg.(value & opt int 1024
       & info [ "queue-cap" ] ~docv:"Q"
           ~doc:"Max jobs queued per worker mailbox; overflow answers a \
                 typed Busy reply.")

let cmd =
  let doc = "serve the parallel-disk dictionary over TCP" in
  Cmd.v
    (Cmd.info "pdm-serve" ~version:"%%VERSION%%" ~doc)
    Term.(ret
            (const run_serve $ port_arg $ shards_arg $ domains_arg
             $ capacity_arg $ replicas_arg $ spares_arg $ seed_arg
             $ batch_arg $ queue_cap_arg))

let () = exit (Cmd.eval cmd)
