(* pdm-loadgen: drive a running pdm-serve with a seeded workload
   (uniform / Zipf / adversarial churn via Pdm_simtest.Sim_gen),
   closed- or open-loop, and report wall-clock p50/p99/p999 plus the
   deterministic ios/rounds ledgers. --json writes bench-check records
   (the BENCH_serve.json trajectory); --kill/--scrub inject chaos at a
   fixed op index so single-connection runs stay replayable. *)

module Loadgen = Pdm_server.Loadgen
module Sim_gen = Pdm_simtest.Sim_gen

open Cmdliner

let parse_event kind spec =
  match (kind, List.map int_of_string_opt (String.split_on_char ':' spec)) with
  | `Kill, [ Some at; Some shard; Some disk ] ->
    Ok (at, Loadgen.Kill_disk { shard; disk })
  | `Scrub, [ Some at; Some shard ] -> Ok (at, Loadgen.Scrub { shard })
  | `Kill, _ -> Error (Printf.sprintf "--kill %S: expected AT:SHARD:DISK" spec)
  | `Scrub, _ -> Error (Printf.sprintf "--scrub %S: expected AT:SHARD" spec)

let run_loadgen port name requests keys universe dist conns rate seed
    lookup_frac delete_frac value_bytes kills scrubs json_path =
  if port = 0 then `Error (false, "--port is required (see pdm-serve output)")
  else
    match Sim_gen.dist_of_string dist with
    | None -> `Error (false, Printf.sprintf "unknown distribution %S" dist)
    | Some dist -> (
      let events =
        List.fold_left
          (fun acc (kind, specs) ->
            List.fold_left
              (fun acc spec ->
                match acc with
                | Error _ as e -> e
                | Ok evs -> (
                  match parse_event kind spec with
                  | Ok ev -> Ok (ev :: evs)
                  | Error m -> Error m))
              acc specs)
          (Ok [])
          [ (`Kill, kills); (`Scrub, scrubs) ]
      in
      match events with
      | Error m -> `Error (false, m)
      | Ok events ->
        let spec =
          { Sim_gen.default with
            Sim_gen.seed; universe; key_count = keys; count = requests;
            dist; value_bytes;
            lookup_fraction = lookup_frac; delete_fraction = delete_frac }
        in
        let mode =
          if rate > 0.0 then Loadgen.Open_rate rate else Loadgen.Closed
        in
        let scenario = { Loadgen.spec; conns; mode; events } in
        let r = Loadgen.run ~name ~port scenario in
        Printf.printf
          "loadgen %s: %d requests over %d conns (%s)\n\
          \  wrong %d, busy %d, unavailable %d, protocol errors %d\n\
          \  latency p50 %.1fus  p99 %.1fus  p999 %.1fus\n\
          \  ledgers: rounds %d, ios %d, digest %s\n%!"
          r.Loadgen.name r.Loadgen.requests conns
          (match mode with
           | Loadgen.Closed -> "closed loop"
           | Loadgen.Open_rate rate ->
             Printf.sprintf "open loop, %.0f req/s" rate)
          r.Loadgen.wrong r.Loadgen.busy r.Loadgen.unavailable
          r.Loadgen.proto_errors r.Loadgen.p50_us r.Loadgen.p99_us
          r.Loadgen.p999_us r.Loadgen.rounds r.Loadgen.ios
          r.Loadgen.answers_digest;
        (match json_path with
         | None -> ()
         | Some path ->
           let json = Loadgen.to_bench_json [ r ] in
           if path = "-" then print_string json
           else begin
             let oc = open_out path in
             output_string oc json;
             close_out oc
           end);
        if r.Loadgen.wrong > 0 then
          `Error (false, Printf.sprintf "%d wrong answers" r.Loadgen.wrong)
        else `Ok ())

let port_arg =
  Arg.(value & opt int 0
       & info [ "port" ] ~docv:"PORT" ~doc:"pdm-serve port on loopback.")

let name_arg =
  Arg.(value & opt string "adhoc"
       & info [ "name" ] ~docv:"NAME" ~doc:"Scenario name for the report.")

let requests_arg =
  Arg.(value & opt int 1024
       & info [ "q"; "requests" ] ~docv:"Q" ~doc:"Data operations to send.")

let keys_arg =
  Arg.(value & opt int 256
       & info [ "keys" ] ~docv:"K" ~doc:"Key population size.")

let universe_arg =
  Arg.(value & opt int (1 lsl 20)
       & info [ "universe" ] ~docv:"U" ~doc:"Key universe size.")

let dist_arg =
  Arg.(value & opt string "uniform"
       & info [ "dist" ] ~docv:"DIST"
           ~doc:"Distribution: $(b,uniform), $(b,zipf:S) or \
                 $(b,adversarial).")

let conns_arg =
  Arg.(value & opt int 1
       & info [ "conns" ] ~docv:"C" ~doc:"Concurrent TCP connections.")

let rate_arg =
  Arg.(value & opt float 0.0
       & info [ "rate" ] ~docv:"R"
           ~doc:"Open-loop arrival rate in requests/second; 0 (default) \
                 runs closed-loop.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let lookup_arg =
  Arg.(value & opt float 0.6
       & info [ "lookup-frac" ] ~docv:"F" ~doc:"Fraction of ops that read.")

let delete_arg =
  Arg.(value & opt float 0.2
       & info [ "delete-frac" ] ~docv:"F"
           ~doc:"Of the non-lookup remainder, fraction that delete.")

let value_bytes_arg =
  Arg.(value & opt int 8
       & info [ "value-bytes" ] ~docv:"B" ~doc:"Payload bytes per record.")

let kill_arg =
  Arg.(value & opt_all string []
       & info [ "kill" ] ~docv:"AT:SHARD:DISK"
           ~doc:"Inject a disk kill just before op AT (repeatable).")

let scrub_arg =
  Arg.(value & opt_all string []
       & info [ "scrub" ] ~docv:"AT:SHARD"
           ~doc:"Inject a scrub just before op AT (repeatable).")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"PATH"
           ~doc:"Write the bench-check record to PATH ($(b,-) = stdout).")

let cmd =
  let doc = "generate load against a running pdm-serve" in
  Cmd.v
    (Cmd.info "pdm-loadgen" ~version:"%%VERSION%%" ~doc)
    Term.(ret
            (const run_loadgen $ port_arg $ name_arg $ requests_arg
             $ keys_arg $ universe_arg $ dist_arg $ conns_arg $ rate_arg
             $ seed_arg $ lookup_arg $ delete_arg $ value_bytes_arg
             $ kill_arg $ scrub_arg $ json_arg))

let () = exit (Cmd.eval cmd)
