#!/bin/bash
# Regenerate the BENCH_serve.json trajectory: four deterministic
# single-connection scenarios (uniform / Zipf / adversarial closed
# loops, plus a Zipf run with a disk kill + scrub mid-stream), each
# against a fresh pdm-serve (4 shards, 2 domains, seed 42). With one
# connection the daemon replays exactly the generator's op order, so
# the ios/rounds columns are exact run-to-run and bench-check gates
# them at 0% tolerance; the ns column is the measured p999 and is
# informational. Usage: bench/serve_bench.sh [OUT.json]
set -e
SERVE=${SERVE:-_build/default/bin/pdm_serve.exe}
LOADGEN=${LOADGEN:-_build/default/bin/pdm_loadgen.exe}
OUT=${1:-bench-serve.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_scenario() {
  name="$1"; shift
  "$SERVE" --shards 4 --domains 2 --seed 42 > "$tmp/$name.log" 2>&1 &
  pid=$!
  port=""
  for _ in $(seq 1 200); do
    port=$(sed -n 's/pdm-serve listening on \([0-9]*\).*/\1/p' "$tmp/$name.log")
    [ -n "$port" ] && break
    sleep 0.05
  done
  [ -n "$port" ] || { echo "$name: daemon did not come up" >&2; exit 1; }
  "$LOADGEN" --port "$port" --name "$name" --conns 1 --requests 1024 \
    --keys 256 --json "$tmp/$name.json" "$@" > /dev/null
  # graceful shutdown must drain and exit 0 — the trajectory doubles
  # as a SIGTERM regression check
  kill -TERM "$pid"
  wait "$pid"
  grep -q 'pdm-serve stopped' "$tmp/$name.log"
  sed '1d;$d' "$tmp/$name.json" > "$tmp/$name.record"
}

run_scenario closed_uniform --dist uniform --seed 1
run_scenario closed_zipf --dist zipf:1.1 --seed 2
run_scenario closed_adversarial --dist adversarial --seed 3
run_scenario chaos_kill_scrub --dist zipf:1.1 --seed 4 \
  --kill 341:1:0 --scrub 682:1

{
  echo "["
  sep=""
  for name in closed_uniform closed_zipf closed_adversarial \
    chaos_kill_scrub; do
    printf '%s%s' "$sep" "$(cat "$tmp/$name.record")"
    sep=",
"
  done
  printf '\n]\n'
} > "$OUT"
echo "wrote $OUT"
