(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper's evaluation —
   Figure 1 plus the per-theorem experiments E2..E10 indexed in
   DESIGN.md — by running the structures in the PDM simulator and
   printing measured parallel-I/O counts next to the paper's bounds.

   Part 2 runs Bechamel wall-clock microbenchmarks (one Test.make per
   operation of each structure, plus one per experiment driver) so the
   implementation's constant factors are visible too. *)

(* pdm-lint: allow R4 — the bench harness is the experiments library's
   presentation layer and re-exports its E2..E10 drivers and shared
   sizing constants wholesale; aliasing every name would only obscure
   the tables *)
open Pdm_experiments
module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Engine = Pdm_engine.Engine
module Basic = Pdm_dictionary.Basic_dict
module Fragmented = Pdm_dictionary.Fragmented
module Cascade = Pdm_dictionary.Dynamic_cascade
module Hash_table = Pdm_baselines.Hash_table
module Cuckoo = Pdm_baselines.Cuckoo
module Btree = Pdm_baselines.Btree
module Greedy = Pdm_loadbalance.Greedy
module Seeded = Pdm_expander.Seeded
module Bipartite = Pdm_expander.Bipartite
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Journal = Pdm_sim.Journal
module Store = Pdm_io.Store

let argv_opt flag =
  let rec find = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* --backend mem|file|mmap rebuilds the core fixtures (unchanged
   names) on real storage: the deterministic ios/rounds columns stay
   identical to the mem baselines by the backend contract, so
   bench-check still compares exactly, while the ns column becomes a
   real wall-clock measurement. *)
let backend_kind =
  Option.value (argv_opt "--backend") ~default:"mem"

let backend_factory : int Pdm_sim.Backend.factory option =
  match String.lowercase_ascii backend_kind with
  | "mem" -> None
  | k -> (
    match Store.factory_of_string k with
    | Ok f -> Some f
    | Error m -> invalid_arg ("bench: " ^ m))

(* the always-on file fixtures, regardless of --backend *)
let file_factory () =
  match Store.factory_of_string "file" with
  | Ok f -> f
  | Error m -> invalid_arg ("bench: " ^ m)

let print_experiments () =
  Format.printf "#### Part 1: paper reproduction (parallel-I/O tables) ####@.";
  Table.print (Figure1.to_table (Figure1.run ()));
  Table.print (Load_balance.to_table (Load_balance.run ()));
  Table.print (Unique_neighbors.to_table (Unique_neighbors.run ()));
  Table.print (One_probe_exp.to_table (One_probe_exp.run ()));
  Table.print (Dynamic_exp.to_table (Dynamic_exp.run ()));
  Table.print (Basic_exp.to_table (Basic_exp.run ()));
  Table.print (Btree_compare.to_table (Btree_compare.run ()));
  Table.print (Explicit_exp.to_table (Explicit_exp.run ()));
  Table.print (Rebuild_exp.to_table (Rebuild_exp.run ()));
  Table.print (Bandwidth_exp.to_table (Bandwidth_exp.run ()));
  List.iter Table.print (Ablation_exp.to_tables (Ablation_exp.run ()));
  Table.print (Extensions_exp.to_table (Extensions_exp.run ()));
  Table.print (Scale_exp.to_table (Scale_exp.run ()));
  Table.print (Realtime_exp.to_table (Realtime_exp.run ()));
  Table.print (Cache_exp.to_table (Cache_exp.run ()));
  Table.print (Fault_exp.to_table (Fault_exp.run ()));
  Table.print (Repair_exp.to_table (Repair_exp.run ()))

(* --- wall-clock microbenchmarks --- *)

let universe = 1 lsl 22
let n = 1000
let block_words = 64
let disks = 8

let keys = lazy (Sampling.distinct (Prng.create 1) ~universe ~count:n)

let val8 = Pdm_workload.Payload.value_bytes_of 8

let cursor = ref 0

let next_key () =
  let ks = Lazy.force keys in
  let k = ks.(!cursor) in
  cursor := (!cursor + 1) mod Array.length ks;
  k

let basic_dict =
  lazy
    (let cfg =
       Basic.plan ~universe ~capacity:n ~block_words ~degree:disks
         ~value_bytes:8 ~seed:2 ()
     in
     let machine =
       Pdm.create ?factory:backend_factory ~disks ~block_size:block_words
         ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
     in
     let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
     Array.iter (fun k -> Basic.insert d k (val8 k)) (Lazy.force keys);
     d)

let fragmented =
  lazy
    (let cfg =
       Fragmented.plan ~universe ~capacity:n ~block_words ~degree:disks
         ~sigma_bits:128 ~seed:3 ()
     in
     let machine =
       Pdm.create ?factory:backend_factory ~disks ~block_size:block_words
         ~blocks_per_disk:(Fragmented.blocks_per_disk cfg) ()
     in
     let d = Fragmented.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
     Array.iter
       (fun k -> Fragmented.insert d k (Common.sigma_payload ~sigma_bits:128 k))
       (Lazy.force keys);
     d)

let cascade =
  lazy
    (let t =
       Cascade.create ?factory:backend_factory ~block_words
         { Cascade.universe; capacity = n; degree = 15; sigma_bits = 128;
           epsilon = 1.0; v_factor = 3; seed = 4 }
     in
     Array.iter
       (fun k -> Cascade.insert t k (Common.sigma_payload ~sigma_bits:128 k))
       (Lazy.force keys);
     t)

let hash_table =
  lazy
    (let cfg =
       Hash_table.plan ~universe ~capacity:n ~block_words ~disks
         ~value_bytes:8 ~seed:5 ()
     in
     let machine =
       Pdm.create ?factory:backend_factory ~disks ~block_size:block_words
         ~blocks_per_disk:cfg.Hash_table.superblocks ()
     in
     let h = Hash_table.create ~machine cfg in
     Array.iter (fun k -> Hash_table.insert h k (val8 k)) (Lazy.force keys);
     h)

let cuckoo =
  lazy
    (let cfg =
       Cuckoo.plan ~universe ~capacity:n ~block_words ~disks ~value_bytes:8
         ~seed:6 ()
     in
     let machine =
       Pdm.create ?factory:backend_factory ~disks ~block_size:block_words
         ~blocks_per_disk:cfg.Cuckoo.buckets ()
     in
     let c = Cuckoo.create ~machine cfg in
     Array.iter (fun k -> Cuckoo.insert c k (val8 k)) (Lazy.force keys);
     c)

let btree =
  lazy
    (let superblocks = 4096 in
     let machine =
       Pdm.create ?factory:backend_factory ~disks ~block_size:block_words
         ~blocks_per_disk:superblocks ()
     in
     let t =
       Btree.create ~machine
         { Btree.universe; value_bytes = 8; cache_levels = 0; superblocks }
     in
     Array.iter (fun k -> Btree.insert t k (val8 k)) (Lazy.force keys);
     t)

let balancer =
  lazy
    (let graph = Seeded.striped ~seed:7 ~u:universe ~v:(8 * 1024) ~d:8 in
     Greedy.create ~graph ~k:1 ())

(* Backend-indirection overhead guard: the same single-block read
   through (a) a bare array, (b) the Pdm machine with its default
   memory backend, (c) a machine with tracing enabled (scheduler
   path). (b) minus (a) is the price of the backend refactor; it must
   stay negligible next to any real structure operation. *)
let ov_blocks = 256

(* pdm-lint: allow R1 — construction-time bulk preload of the benchmark machine, completed before any measured phase starts *)
let ov_machine : int Pdm.t Lazy.t =
  lazy
    (let m =
       Pdm.create ~disks ~block_size:block_words ~blocks_per_disk:ov_blocks ()
     in
     for d = 0 to disks - 1 do
       for b = 0 to ov_blocks - 1 do
         Pdm.poke m { Pdm.disk = d; block = b }
           (Array.make block_words (Some (d + b)))
       done
     done;
     m)

(* pdm-lint: allow R1 — construction-time bulk preload of the benchmark machine, completed before any measured phase starts *)
let ov_traced : int Pdm.t Lazy.t =
  lazy
    (let m =
       Pdm.create
         ~trace:(Pdm_sim.Trace.create ~capacity:1024 ())
         ~disks ~block_size:block_words ~blocks_per_disk:ov_blocks ()
     in
     for d = 0 to disks - 1 do
       for b = 0 to ov_blocks - 1 do
         Pdm.poke m { Pdm.disk = d; block = b }
           (Array.make block_words (Some (d + b)))
       done
     done;
     m)

(* pdm-lint: allow R1 — construction-time bulk preload of the benchmark machine, completed before any measured phase starts *)
let ov_replicated : int Pdm.t Lazy.t =
  lazy
    (let m =
       Pdm.create ~replicas:2 ~disks ~block_size:block_words
         ~blocks_per_disk:ov_blocks ()
     in
     for d = 0 to disks - 1 do
       for b = 0 to ov_blocks - 1 do
         Pdm.poke m { Pdm.disk = d; block = b }
           (Array.make block_words (Some (d + b)))
       done
     done;
     m)

(* pdm-lint: allow R1 — construction-time bulk preload of the benchmark machine, completed before any measured phase starts *)
let ov_checksummed : int Pdm.t Lazy.t =
  lazy
    (let m =
       Pdm.create ~integrity:Pdm_dictionary.Codec.Checksum.integrity ~disks
         ~block_size:block_words ~blocks_per_disk:ov_blocks ()
     in
     for d = 0 to disks - 1 do
       for b = 0 to ov_blocks - 1 do
         Pdm.poke m { Pdm.disk = d; block = b }
           (Array.make block_words (Some (d + b)))
       done
     done;
     m)

let ov_raw =
  lazy
    (Array.init disks (fun d ->
         Array.init ov_blocks (fun b ->
             Array.make block_words (Some (d + b)))))

let ov_cursor = ref 0

let ov_next () =
  ov_cursor := (!ov_cursor + 1) mod (disks * ov_blocks);
  { Pdm.disk = !ov_cursor mod disks; block = !ov_cursor / disks mod ov_blocks }

let expander = lazy (Seeded.striped ~seed:8 ~u:universe ~v:(8 * 1024) ~d:8)

(* --- batched query engine fixtures --- *)

let engine_scale =
  { Adapters.default_scale with capacity = n; block_words; seed = 9 }

let engine_ad =
  lazy
    (let data = Array.map (fun k -> (k, val8 k)) (Lazy.force keys) in
     Adapters.engine_one_probe_static ~scale:engine_scale
       ?factory:backend_factory ~data ())

let engine_batch = 64

(* One 64-request batch through a fresh (cache-less) engine. *)
let engine_run_batch_with ad =
  let eng =
    Engine.create
      ~config:
        { Engine.max_batch = engine_batch; deadline_rounds = 1_000_000;
          cache_blocks = 0 }
      ad.Adapters.engine_dict
  in
  for _ = 1 to engine_batch do
    ignore (Engine.submit eng (Engine.Lookup (next_key ())))
  done;
  Engine.drain eng;
  ignore (Engine.take_outcomes eng);
  eng

let engine_run_batch () = engine_run_batch_with (Lazy.force engine_ad)

(* A persistent engine with a warm cache: created once (its cache
   registers a write listener on the machine, so one instance serves
   every iteration). *)
let engine_cached =
  lazy
    (let ad = Lazy.force engine_ad in
     Engine.create
       ~config:
         { Engine.max_batch = engine_batch; deadline_rounds = 1_000_000;
           cache_blocks = 1024 }
       ad.Adapters.engine_dict)

let engine_tests =
  let open Bechamel in
  [ Test.make ~name:"engine.batch64_lookups"
      (Staged.stage (fun () -> ignore (engine_run_batch ())));
    Test.make ~name:"engine.batch64_lookups_cached"
      (Staged.stage (fun () ->
           let eng = Lazy.force engine_cached in
           for _ = 1 to engine_batch do
             ignore (Engine.submit eng (Engine.Lookup (next_key ())))
           done;
           Engine.drain eng;
           ignore (Engine.take_outcomes eng)));
    Test.make ~name:"engine.single_lookup"
      (Staged.stage (fun () ->
           let ad = Lazy.force engine_ad in
           let eng =
             Engine.create
               ~config:
                 { Engine.max_batch = 1; deadline_rounds = 0;
                   cache_blocks = 0 }
               ad.Adapters.engine_dict
           in
           ignore (Engine.submit eng (Engine.Lookup (next_key ())));
           Engine.drain eng)) ]

(* --- real-I/O file-backend fixtures (always in the core group) ---

   Measured regardless of --backend, so the checked-in BENCH_core.json
   carries a wall-clock trajectory for a core dictionary pair, the
   engine at saturation and the write-ahead journal on real storage.
   The ios/rounds columns are identical to the mem rows by the backend
   contract; only the ns column is a real file-I/O measurement. *)

let basic_dict_file =
  lazy
    (let cfg =
       Basic.plan ~universe ~capacity:n ~block_words ~degree:disks
         ~value_bytes:8 ~seed:2 ()
     in
     let machine =
       Pdm.create ~factory:(file_factory ()) ~disks ~block_size:block_words
         ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
     in
     let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
     Array.iter (fun k -> Basic.insert d k (val8 k)) (Lazy.force keys);
     d)

let cascade_file =
  lazy
    (let t =
       Cascade.create ~factory:(file_factory ()) ~block_words
         { Cascade.universe; capacity = n; degree = 15; sigma_bits = 128;
           epsilon = 1.0; v_factor = 3; seed = 4 }
     in
     Array.iter
       (fun k -> Cascade.insert t k (Common.sigma_payload ~sigma_bits:128 k))
       (Lazy.force keys);
     t)

let engine_ad_file =
  lazy
    (let data = Array.map (fun k -> (k, val8 k)) (Lazy.force keys) in
     Adapters.engine_one_probe_static ~scale:engine_scale
       ~factory:(file_factory ()) ~data ())

(* Journal fixtures: [jn_updates] full-block updates through the
   write-ahead protocol, committed one at a time or all at once — the
   unbatched/batched pair whose ns gap is the fsync-amortization story
   E22 measures at larger scale. *)
let jn_updates = 16
let jn_capacity = 24

let journal_fixture factory =
  let jrows = Journal.rows ~disks ~capacity_blocks:jn_capacity in
  let m =
    Pdm.create ?factory ~disks ~block_size:block_words
      ~blocks_per_disk:(jrows + ((jn_updates + disks - 1) / disks)) ()
  in
  let jn = Journal.create m ~block_offset:0 ~capacity_blocks:jn_capacity in
  let target i = { Pdm.disk = i mod disks; block = jrows + (i / disks) } in
  let payload i =
    Array.init block_words (fun j -> Some (Pdm_util.Prng.hash2 ~seed:31 i j))
  in
  let batch lo hi =
    List.init (hi - lo) (fun k -> (target (lo + k), payload (lo + k)))
  in
  (m, jn, batch)

let journal_file = lazy (journal_fixture (Some (file_factory ())))
let journal_replay_file = lazy (journal_fixture (Some (file_factory ())))

let journal_commit ~per_commit (_, jn, batch) =
  let i = ref 0 in
  while !i < jn_updates do
    let hi = min jn_updates (!i + per_commit) in
    Journal.log_and_apply jn (batch !i hi);
    i := hi
  done

(* Crash a committed-but-unapplied batch, then time the recovery
   replay. A fresh handle per iteration (Journal.create is pure
   validation); recovery leaves the region clean, so iterations are
   self-contained. *)
let journal_replay () =
  let m, _, batch = Lazy.force journal_replay_file in
  let jn = Journal.create m ~block_offset:0 ~capacity_blocks:jn_capacity in
  (match
     Journal.log_and_apply jn ~crash:Journal.After_commit (batch 0 jn_updates)
   with
  | () -> failwith "bench: injected crash did not fire"
  | exception Journal.Crashed -> ());
  match Journal.recover m ~block_offset:0 ~capacity_blocks:jn_capacity with
  | `Replayed _ -> ()
  | `Clean | `Discarded -> failwith "bench: recovery did not replay"

let file_tests =
  let open Bechamel in
  [ Test.make ~name:"basic_dict.find_file"
      (Staged.stage (fun () ->
           ignore (Basic.find (Lazy.force basic_dict_file) (next_key ()))));
    Test.make ~name:"cascade.find_file"
      (Staged.stage (fun () ->
           ignore (Cascade.find (Lazy.force cascade_file) (next_key ()))));
    Test.make ~name:"engine.batch64_lookups_file"
      (Staged.stage (fun () ->
           ignore (engine_run_batch_with (Lazy.force engine_ad_file))));
    Test.make ~name:"journal.commit_unbatched_file"
      (Staged.stage (fun () ->
           journal_commit ~per_commit:1 (Lazy.force journal_file)));
    Test.make ~name:"journal.commit_batched_file"
      (Staged.stage (fun () ->
           journal_commit ~per_commit:jn_updates (Lazy.force journal_file)));
    Test.make ~name:"journal.replay_file"
      (Staged.stage journal_replay) ]

(* --- sharded cluster fixtures --- *)

module Cluster = Pdm_cluster.Cluster
module Topology = Pdm_cluster.Topology

let cluster_shards = 4

let make_cluster () =
  let c =
    Cluster.create
      ~config:
        { Cluster.default_config with
          Cluster.replicas = 2;
          shard_capacity = max 256 (3 * 2 * n / cluster_shards);
          universe; seed = 10 }
      (Topology.standard ~shards:cluster_shards)
  in
  Array.iter (fun k -> Cluster.insert c k (val8 k)) (Lazy.force keys);
  c

let cluster_c = lazy (make_cluster ())

(* the same cluster behind the deterministic message transport under
   5% drop + 5% duplication: what retries, backoff and hedging cost on
   top of the fault-free router *)
let make_net_cluster () =
  let c =
    Cluster.create
      ~config:
        { Cluster.default_config with
          Cluster.replicas = 2;
          shard_capacity = max 256 (3 * 2 * n / cluster_shards);
          universe; seed = 10;
          net =
            Some
              (Pdm_cluster.Transport.spec ~seed:10 ~drop:0.05 ~duplicate:0.05
                 ~reorder_window:3 ~max_attempts:6 ~hedge_after:1 ()) }
      (Topology.standard ~shards:cluster_shards)
  in
  Array.iter (fun k -> Cluster.insert c k (val8 k)) (Lazy.force keys);
  c

let cluster_net_c = lazy (make_net_cluster ())

let cluster_batch = 64

let cluster_tests =
  let open Bechamel in
  [ Test.make ~name:"cluster.find"
      (Staged.stage (fun () ->
           ignore (Cluster.find (Lazy.force cluster_c) (next_key ()))));
    Test.make ~name:"cluster.batch64_lookups"
      (Staged.stage (fun () ->
           ignore
             (Cluster.find_batch (Lazy.force cluster_c)
                (List.init cluster_batch (fun _ -> next_key ())))));
    Test.make ~name:"cluster.insert_delete"
      (Staged.stage (fun () ->
           let c = Lazy.force cluster_c in
           let k = next_key () in
           ignore (Cluster.delete c k);
           Cluster.insert c k (val8 k)));
    Test.make ~name:"cluster.find_faulty_net"
      (Staged.stage (fun () ->
           ignore (Cluster.find (Lazy.force cluster_net_c) (next_key ()))));
    Test.make ~name:"cluster.batch64_lookups_faulty_net"
      (Staged.stage (fun () ->
           ignore
             (Cluster.find_batch (Lazy.force cluster_net_c)
                (List.init cluster_batch (fun _ -> next_key ()))))) ]

let op_tests =
  let open Bechamel in
  [ Test.make ~name:"basic_dict.find"
      (Staged.stage (fun () ->
           ignore (Basic.find (Lazy.force basic_dict) (next_key ()))));
    Test.make ~name:"basic_dict.insert_delete"
      (Staged.stage (fun () ->
           let d = Lazy.force basic_dict in
           let k = next_key () in
           ignore (Basic.delete d k);
           Basic.insert d k (val8 k)));
    Test.make ~name:"fragmented.find"
      (Staged.stage (fun () ->
           ignore (Fragmented.find (Lazy.force fragmented) (next_key ()))));
    Test.make ~name:"cascade.find"
      (Staged.stage (fun () ->
           ignore (Cascade.find (Lazy.force cascade) (next_key ()))));
    Test.make ~name:"hash_table.find"
      (Staged.stage (fun () ->
           ignore (Hash_table.find (Lazy.force hash_table) (next_key ()))));
    Test.make ~name:"cuckoo.find"
      (Staged.stage (fun () ->
           ignore (Cuckoo.find (Lazy.force cuckoo) (next_key ()))));
    Test.make ~name:"btree.find"
      (Staged.stage (fun () ->
           ignore (Btree.find (Lazy.force btree) (next_key ()))));
    Test.make ~name:"load_balancer.insert"
      (Staged.stage (fun () ->
           ignore (Greedy.insert (Lazy.force balancer) (next_key ()))));
    Test.make ~name:"expander.neighbors"
      (Staged.stage (fun () ->
           ignore (Bipartite.neighbors (Lazy.force expander) (next_key ()))));
    Test.make ~name:"overhead.raw_array_copy"
      (Staged.stage (fun () ->
           let a = ov_next () in
           ignore
             (Array.copy (Lazy.force ov_raw).(a.Pdm.disk).(a.Pdm.block))));
    Test.make ~name:"overhead.pdm_read_one"
      (Staged.stage (fun () ->
           ignore (Pdm.read_one (Lazy.force ov_machine) (ov_next ()))));
    Test.make ~name:"overhead.pdm_read_one_traced"
      (Staged.stage (fun () ->
           ignore (Pdm.read_one (Lazy.force ov_traced) (ov_next ()))));
    Test.make ~name:"overhead.pdm_read_one_replicated"
      (Staged.stage (fun () ->
           ignore (Pdm.read_one (Lazy.force ov_replicated) (ov_next ()))));
    Test.make ~name:"overhead.pdm_read_one_checksummed"
      (Staged.stage (fun () ->
           ignore (Pdm.read_one (Lazy.force ov_checksummed) (ov_next ())))) ]

(* One Test.make per experiment driver (reduced scale), so regressions
   in whole-experiment wall time are visible. *)
let experiment_tests =
  let open Bechamel in
  [ Test.make ~name:"exp.figure1"
      (Staged.stage (fun () -> ignore (Figure1.run ~n:200 ())));
    Test.make ~name:"exp.lemma3"
      (Staged.stage (fun () ->
           ignore (Load_balance.run ~sweep:[ (1024, 256, 8, 1) ] ())));
    Test.make ~name:"exp.lemmas45"
      (Staged.stage (fun () ->
           ignore (Unique_neighbors.run ~trials:2 ~sweep:[ (200, 2, 8) ] ())));
    Test.make ~name:"exp.theorem6"
      (Staged.stage (fun () -> ignore (One_probe_exp.run ~ns:[ 200 ] ())));
    Test.make ~name:"exp.theorem7"
      (Staged.stage (fun () ->
           ignore (Dynamic_exp.run ~n:200 ~epsilons:[ 1.0 ] ())));
    Test.make ~name:"exp.basic41"
      (Staged.stage (fun () ->
           ignore (Basic_exp.run ~n:300 ~block_sizes:[ 64 ] ())));
    Test.make ~name:"exp.btree"
      (Staged.stage (fun () -> ignore (Btree_compare.run ~ns:[ 2000 ] ())));
    Test.make ~name:"exp.section5"
      (Staged.stage (fun () ->
           ignore
             (Explicit_exp.run ~trials:2 ~sweep:[ (1 lsl 16, 32, 0.25) ] ())));
    Test.make ~name:"exp.rebuild"
      (Staged.stage (fun () -> ignore (Rebuild_exp.run ~operations:500 ())));
    Test.make ~name:"exp.bandwidth"
      (Staged.stage (fun () -> ignore (Bandwidth_exp.run ~n:200 ())));
    Test.make ~name:"exp.extensions"
      (Staged.stage (fun () -> ignore (Extensions_exp.run ())));
    Test.make ~name:"exp.faults"
      (Staged.stage (fun () -> ignore (Fault_exp.run ~n:500 ~lookups:300 ())));
    Test.make ~name:"exp.repair"
      (Staged.stage (fun () -> ignore (Repair_exp.run ~n:500 ~lookups:200 ()))) ]

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let print_bechamel title results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Bechamel.Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 =
        match Bechamel.Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; Printf.sprintf "%.0f" est; r2 ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Table.print
    (Table.make ~title ~header:[ "benchmark"; "time (ns/op)"; "r^2" ] rows)

(* --- machine-readable output: --json out.json ---

   One record per microbenchmark: {name, ios, rounds, ns}. [ns] is the
   Bechamel wall-clock estimate; [ios] (blocks transferred) and
   [rounds] (parallel I/Os) come from running the operation once
   against a fresh instrumented instance, so the simulated cost and
   the wall-clock cost land in the same record. *)

let io_probes () =
  let scale = { Adapters.default_scale with capacity = n; block_words } in
  let warmed ctor =
    let a : Adapters.t = ctor () in
    Array.iter
      (fun k -> a.Adapters.insert k (Common.value_bytes_of a.Adapters.value_bytes k))
      (Lazy.force keys);
    a
  in
  let find_probe name ctor =
    ( name,
      fun () ->
        let a = warmed ctor in
        let (), d =
          Stats.measure a.Adapters.stats (fun () ->
              ignore (a.Adapters.find (next_key ())))
        in
        (d.Stats.block_reads + d.Stats.block_writes, Stats.parallel_ios d) )
  in
  [ find_probe "basic_dict.find" (fun () -> Adapters.basic ~scale ());
    find_probe "fragmented.find" (fun () -> Adapters.fragmented ~scale ());
    find_probe "cascade.find" (fun () -> Adapters.cascade ~scale ());
    find_probe "hash_table.find" (fun () -> Adapters.hash_table ~scale ());
    find_probe "cuckoo.find" (fun () -> Adapters.cuckoo ~scale ());
    find_probe "btree.find" (fun () -> Adapters.btree ~scale ());
    ( "engine.batch64_lookups",
      fun () ->
        let eng = engine_run_batch () in
        let s = Engine.stats eng in
        (s.Engine.blocks_fetched, s.Engine.rounds) );
    (* file-backend probes: same deterministic operations on the
       file-backed fixtures — the recorded ios/rounds must equal the
       mem rows (the backend contract bench-check enforces) *)
    find_probe "basic_dict.find_file" (fun () ->
        Adapters.basic ~scale ~factory:(file_factory ()) ());
    find_probe "cascade.find_file" (fun () ->
        Adapters.cascade ~scale ~factory:(file_factory ()) ());
    ( "engine.batch64_lookups_file",
      fun () ->
        let eng = engine_run_batch_with (Lazy.force engine_ad_file) in
        let s = Engine.stats eng in
        (s.Engine.blocks_fetched, s.Engine.rounds) );
    ( "journal.commit_unbatched_file",
      fun () ->
        let ((m, _, _) as fx) = journal_fixture (Some (file_factory ())) in
        let (), d =
          Stats.measure (Pdm.stats m) (fun () ->
              journal_commit ~per_commit:1 fx)
        in
        (d.Stats.block_reads + d.Stats.block_writes, Stats.parallel_ios d) );
    ( "journal.commit_batched_file",
      fun () ->
        let ((m, _, _) as fx) = journal_fixture (Some (file_factory ())) in
        let (), d =
          Stats.measure (Pdm.stats m) (fun () ->
              journal_commit ~per_commit:jn_updates fx)
        in
        (d.Stats.block_reads + d.Stats.block_writes, Stats.parallel_ios d) );
    ( "journal.replay_file",
      fun () ->
        let m, jn, batch = journal_fixture (Some (file_factory ())) in
        (match
           Journal.log_and_apply jn ~crash:Journal.After_commit
             (batch 0 jn_updates)
         with
        | () -> failwith "bench: injected crash did not fire"
        | exception Journal.Crashed -> ());
        let v, d =
          Stats.measure (Pdm.stats m) (fun () ->
              Journal.recover m ~block_offset:0 ~capacity_blocks:jn_capacity)
        in
        (match v with
        | `Replayed _ -> ()
        | `Clean | `Discarded -> failwith "bench: recovery did not replay");
        (d.Stats.block_reads + d.Stats.block_writes, Stats.parallel_ios d) );
    (* cluster probes report honest parallel rounds (the shard
       machines' clocks); per-block I/O counts stay with the per-shard
       engines, so ios is not broken out here *)
    ( "cluster.find",
      fun () ->
        let c = make_cluster () in
        let total () =
          List.fold_left
            (fun acc id -> acc + Pdm.rounds_total (Cluster.shard_machine c id))
            0 (Cluster.shard_ids c)
        in
        let before = total () in
        ignore (Cluster.find c (next_key ()));
        (0, total () - before) );
    ( "cluster.batch64_lookups",
      fun () ->
        let c = make_cluster () in
        let before = (Cluster.stats c).Cluster.batch_rounds in
        ignore
          (Cluster.find_batch c
             (List.init cluster_batch (fun _ -> next_key ())));
        (0, (Cluster.stats c).Cluster.batch_rounds - before) );
    (* net variants count machine rounds plus the transport's charged
       network ticks (timeouts, latency, backoff) — the full honest
       cost of a read under message faults *)
    ( "cluster.find_faulty_net",
      fun () ->
        let c = make_net_cluster () in
        let total () =
          (Cluster.stats c).Cluster.net_rounds
          + List.fold_left
              (fun acc id -> acc + Pdm.rounds_total (Cluster.shard_machine c id))
              0 (Cluster.shard_ids c)
        in
        let before = total () in
        ignore (Cluster.find c (next_key ()));
        (0, total () - before) );
    ( "cluster.batch64_lookups_faulty_net",
      fun () ->
        let c = make_net_cluster () in
        let total () =
          let st = Cluster.stats c in
          st.Cluster.batch_rounds + st.Cluster.net_rounds
        in
        let before = total () in
        ignore
          (Cluster.find_batch c
             (List.init cluster_batch (fun _ -> next_key ())));
        (0, total () - before) ) ]

let estimate_ns ols =
  match Bechamel.Analyze.OLS.estimates ols with
  | Some (e :: _) -> e
  | Some [] | None -> nan

(* Bechamel prefixes grouped test names; records carry the bare
   benchmark name (the part after the last '/'). *)
let bare_name k =
  match String.rindex_opt k '/' with
  | Some i -> String.sub k (i + 1) (String.length k - i - 1)
  | None -> k

let write_json path results =
  let probes = io_probes () in
  let records =
    Hashtbl.fold
      (fun k ols acc -> (bare_name k, estimate_ns ols) :: acc)
      results []
    |> List.sort compare
  in
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (name, ns) ->
      let ios, rounds =
        match List.assoc_opt name probes with
        | Some probe ->
          (* pin the shared key cursor: the wall-clock phase advanced
             it by a time-dependent amount, and the recorded ios/rounds
             must not depend on that (bench-check compares them
             exactly) *)
          cursor := 0;
          probe ()
        | None -> (0, 0)
      in
      Printf.fprintf oc
        "  {\"name\": %S, \"ios\": %d, \"rounds\": %d, \"ns\": %.1f}%s\n" name
        ios rounds
        (if Float.is_nan ns then 0.0 else ns)
        (if i < List.length records - 1 then "," else ""))
    records;
  output_string oc "]\n";
  close_out oc;
  Format.printf "wrote %d benchmark records to %s@." (List.length records)
    path

let json_path () = argv_opt "--json"

(* --only core|cluster narrows the microbenchmark set — the checked-in
   BENCH_core.json / BENCH_cluster.json baselines are regenerated one
   group at a time so a cluster change does not churn the core file. *)
let selected_tests () =
  match argv_opt "--only" with
  | Some "core" -> op_tests @ engine_tests @ file_tests
  | Some "cluster" -> cluster_tests
  | Some g ->
    invalid_arg (Printf.sprintf "unknown --only group %S (core, cluster)" g)
  | None -> op_tests @ engine_tests @ file_tests @ cluster_tests

let () =
  match json_path () with
  | Some path -> write_json path (run_bechamel (selected_tests ()))
  | None ->
    print_experiments ();
    Format.printf "#### Part 2: wall-clock microbenchmarks (Bechamel) ####@.";
    print_bechamel
      "simulated structure operations (includes simulator overhead)"
      (run_bechamel (selected_tests ()));
    print_bechamel "whole-experiment drivers (reduced scale)"
      (run_bechamel experiment_tests)
